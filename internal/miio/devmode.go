package miio

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Developer mode: the real gateway exposes an unencrypted JSON side channel
// (UDP port 9898) that pushes sensor reports to subscribers — the paper's
// collector uses it ("the developer mode provided by Xiaomi Gateway"). The
// simulated counterpart mirrors that: subscribers send {"cmd":"subscribe"},
// the gateway pushes {"cmd":"report",...} datagrams on sensor changes, and
// subscriptions expire unless refreshed.

// Report is one developer-mode push: a change report ("report") or the
// gateway's periodic full-state keep-alive ("heartbeat").
type Report struct {
	Cmd   string          `json:"cmd"` // "report" or "heartbeat"
	Model string          `json:"model"`
	SID   string          `json:"sid"` // subdevice ID
	Data  json.RawMessage `json:"data"`
}

// devModeCommand is what subscribers send.
type devModeCommand struct {
	Cmd string `json:"cmd"`
}

// DevModeConfig configures the side channel.
type DevModeConfig struct {
	// Addr is the UDP listen address; ":0" picks a free port.
	Addr string
	// TTL expires idle subscriptions; default 2 minutes.
	TTL time.Duration
	// Now supplies the clock; defaults to time.Now.
	Now func() time.Time
}

// DevMode is the running side channel.
type DevMode struct {
	cfg  DevModeConfig
	conn *net.UDPConn

	mu   sync.Mutex
	subs map[string]subscription // remote addr → expiry

	done chan struct{}
	wg   sync.WaitGroup
}

type subscription struct {
	addr    *net.UDPAddr
	expires time.Time
}

// NewDevMode binds the side channel and starts accepting subscriptions.
func NewDevMode(cfg DevModeConfig) (*DevMode, error) {
	if cfg.TTL == 0 {
		cfg.TTL = 2 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("miio: devmode resolve %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("miio: devmode listen: %w", err)
	}
	d := &DevMode{
		cfg:  cfg,
		conn: conn,
		subs: make(map[string]subscription),
		done: make(chan struct{}),
	}
	d.wg.Add(1)
	go d.serve()
	return d, nil
}

// Addr returns the bound address.
func (d *DevMode) Addr() net.Addr { return d.conn.LocalAddr() }

// Close stops the channel.
func (d *DevMode) Close() error {
	close(d.done)
	err := d.conn.Close()
	d.wg.Wait()
	return err
}

// Subscribers returns the number of live subscriptions.
func (d *DevMode) Subscribers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Now()
	n := 0
	for _, s := range d.subs {
		if s.expires.After(now) {
			n++
		}
	}
	return n
}

func (d *DevMode) serve() {
	defer d.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, remote, err := d.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-d.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		var cmd devModeCommand
		if err := json.Unmarshal(buf[:n], &cmd); err != nil {
			continue // plaintext garbage: drop, like the device
		}
		switch cmd.Cmd {
		case "subscribe":
			d.mu.Lock()
			d.subs[remote.String()] = subscription{addr: remote, expires: d.cfg.Now().Add(d.cfg.TTL)}
			d.mu.Unlock()
			_, _ = d.conn.WriteToUDP([]byte(`{"cmd":"subscribe_ack"}`), remote)
		case "unsubscribe":
			d.mu.Lock()
			delete(d.subs, remote.String())
			d.mu.Unlock()
		}
	}
}

// Push sends a change report to every live subscriber and reaps expired
// ones.
func (d *DevMode) Push(model, sid string, data any) error {
	return d.push("report", model, sid, data)
}

// Heartbeat sends the gateway's periodic full-state keep-alive — same
// delivery as Push, tagged "heartbeat" so listeners can tell a
// resynchronisation frame from an incremental change.
func (d *DevMode) Heartbeat(model, sid string, data any) error {
	return d.push("heartbeat", model, sid, data)
}

func (d *DevMode) push(cmd, model, sid string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("miio: devmode marshal data: %w", err)
	}
	payload, err := json.Marshal(Report{Cmd: cmd, Model: model, SID: sid, Data: raw})
	if err != nil {
		return fmt.Errorf("miio: devmode marshal report: %w", err)
	}
	now := d.cfg.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	for key, sub := range d.subs {
		if !sub.expires.After(now) {
			delete(d.subs, key)
			continue
		}
		_, _ = d.conn.WriteToUDP(payload, sub.addr)
	}
	return nil
}

// DevModeListener is the collector side of the side channel.
type DevModeListener struct {
	conn    *net.UDPConn
	reports chan Report

	done chan struct{}
	wg   sync.WaitGroup
}

// SubscribeDevMode subscribes to a gateway's developer-mode channel and
// streams its reports. The buffer bounds how many undelivered reports are
// kept before the oldest are dropped.
func SubscribeDevMode(addr string, buffer int) (*DevModeListener, error) {
	if buffer <= 0 {
		buffer = 64
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("miio: devmode resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("miio: devmode dial: %w", err)
	}
	if _, err := conn.Write([]byte(`{"cmd":"subscribe"}`)); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("miio: devmode subscribe: %w", err)
	}
	// Wait for the ack so the subscription is live before returning.
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	ackBuf := make([]byte, 256)
	if _, err := conn.Read(ackBuf); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("miio: devmode ack: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})

	l := &DevModeListener{
		conn:    conn,
		reports: make(chan Report, buffer),
		done:    make(chan struct{}),
	}
	l.wg.Add(1)
	go l.listen()
	return l, nil
}

// Reports streams incoming pushes; the channel closes when the listener
// shuts down.
func (l *DevModeListener) Reports() <-chan Report { return l.reports }

// Close unsubscribes and stops listening.
func (l *DevModeListener) Close() error {
	select {
	case <-l.done:
		return nil
	default:
	}
	close(l.done)
	_, _ = l.conn.Write([]byte(`{"cmd":"unsubscribe"}`))
	err := l.conn.Close()
	l.wg.Wait()
	return err
}

func (l *DevModeListener) listen() {
	defer l.wg.Done()
	defer close(l.reports)
	buf := make([]byte, 4096)
	for {
		n, err := l.conn.Read(buf)
		if err != nil {
			return
		}
		var r Report
		if err := json.Unmarshal(buf[:n], &r); err != nil || (r.Cmd != "report" && r.Cmd != "heartbeat") {
			continue
		}
		select {
		case l.reports <- r:
		case <-l.done:
			return
		default:
			// Buffer full: drop the incoming report (UDP semantics).
		}
	}
}
