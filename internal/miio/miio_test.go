package miio

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"
)

var testToken = mustToken("00112233445566778899aabbccddeeff")

func mustToken(s string) Token {
	t, err := ParseToken(s)
	if err != nil {
		panic(err)
	}
	return t
}

func TestParseToken(t *testing.T) {
	tok, err := ParseToken("00112233445566778899aabbccddeeff")
	if err != nil {
		t.Fatalf("ParseToken: %v", err)
	}
	if tok.String() != "00112233445566778899aabbccddeeff" {
		t.Errorf("round trip = %q", tok.String())
	}
	if _, err := ParseToken("short"); err == nil {
		t.Error("want length error")
	}
	if _, err := ParseToken("zz112233445566778899aabbccddeeff"); err == nil {
		t.Error("want hex error")
	}
}

func TestCryptoRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		[]byte(`{"id":1,"method":"get_prop"}`),
		[]byte(""),
		bytes.Repeat([]byte{0xAB}, 16),   // exact block
		bytes.Repeat([]byte{0xCD}, 1000), // multi-block
	} {
		enc, err := encrypt(payload, testToken)
		if err != nil {
			t.Fatalf("encrypt: %v", err)
		}
		if len(enc)%16 != 0 || len(enc) == 0 {
			t.Fatalf("ciphertext length %d", len(enc))
		}
		dec, err := decrypt(enc, testToken)
		if err != nil {
			t.Fatalf("decrypt: %v", err)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("round trip mismatch: %d bytes vs %d", len(dec), len(payload))
		}
	}
}

func TestCryptoRoundTripProperty(t *testing.T) {
	f := func(payload []byte, tok Token) bool {
		enc, err := encrypt(payload, tok)
		if err != nil {
			return false
		}
		dec, err := decrypt(enc, tok)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecryptWrongTokenFails(t *testing.T) {
	enc, err := encrypt([]byte(`{"id":1}`), testToken)
	if err != nil {
		t.Fatal(err)
	}
	other := mustToken("ffeeddccbbaa99887766554433221100")
	if dec, err := decrypt(enc, other); err == nil && bytes.Equal(dec, []byte(`{"id":1}`)) {
		t.Error("wrong token decrypted to the original payload")
	}
}

func TestDecryptRejectsBadInput(t *testing.T) {
	if _, err := decrypt([]byte{1, 2, 3}, testToken); err == nil {
		t.Error("want block-size error")
	}
	if _, err := decrypt(nil, testToken); err == nil {
		t.Error("want empty error")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{DeviceID: 0x00ABCDEF, Stamp: 12345, Payload: []byte(`{"id":7,"method":"get_prop","params":["smoke"]}`)}
	raw, err := Encode(p, testToken)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Decode(raw, testToken)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.DeviceID != p.DeviceID || back.Stamp != p.Stamp || !bytes.Equal(back.Payload, p.Payload) {
		t.Errorf("round trip = %+v", back)
	}
}

func TestDecodeRejectsTampering(t *testing.T) {
	p := Packet{DeviceID: 1, Stamp: 2, Payload: []byte(`{"id":1}`)}
	raw, err := Encode(p, testToken)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("wrong token", func(t *testing.T) {
		other := mustToken("ffeeddccbbaa99887766554433221100")
		if _, err := Decode(raw, other); err == nil {
			t.Error("checksum must fail under the wrong token")
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		evil := append([]byte(nil), raw...)
		evil[len(evil)-1] ^= 0x01
		if _, err := Decode(evil, testToken); err == nil {
			t.Error("checksum must fail on payload tampering")
		}
	})
	t.Run("flipped header bit", func(t *testing.T) {
		evil := append([]byte(nil), raw...)
		evil[9] ^= 0x01 // device ID byte, covered by the checksum
		if _, err := Decode(evil, testToken); err == nil {
			t.Error("checksum must fail on header tampering")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := Decode(raw[:10], testToken); err == nil {
			t.Error("want short-datagram error")
		}
		if _, err := Decode(raw[:len(raw)-4], testToken); err == nil {
			t.Error("want length-mismatch error")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		evil := append([]byte(nil), raw...)
		evil[0] = 0x99
		if _, err := Decode(evil, testToken); err == nil {
			t.Error("want magic error")
		}
	})
}

func TestHelloPackets(t *testing.T) {
	hello := EncodeHello()
	if !IsHello(hello) {
		t.Fatal("EncodeHello not recognised by IsHello")
	}
	if IsHello(hello[:31]) || IsHello(append(hello, 0)) {
		t.Error("IsHello accepts wrong-size datagrams")
	}
	reply := EncodeHelloReply(0xDEADBEEF, 77)
	pkt, err := Decode(reply, testToken)
	if err != nil {
		t.Fatalf("Decode hello reply: %v", err)
	}
	if pkt.DeviceID != 0xDEADBEEF || pkt.Stamp != 77 || len(pkt.Payload) != 0 {
		t.Errorf("hello reply = %+v", pkt)
	}
}

// echoHandler returns the method and params back; "boom" fails.
type echoHandler struct{}

func (echoHandler) Handle(method string, params json.RawMessage) (any, error) {
	switch method {
	case "boom":
		return nil, errors.New("kaboom")
	case "rpc_boom":
		return nil, &RPCError{Code: -9, Message: "typed"}
	default:
		return map[string]any{"method": method, "params": string(params)}, nil
	}
}

func startGateway(t *testing.T) *Gateway {
	t.Helper()
	g, err := NewGateway(GatewayConfig{DeviceID: 0x1234, Token: testToken, Handler: echoHandler{}})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	t.Cleanup(func() { _ = g.Close() })
	return g
}

func TestGatewayClientEndToEnd(t *testing.T) {
	g := startGateway(t)
	c, err := Dial(g.Addr().String(), testToken, WithTimeout(time.Second))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.DeviceID() != 0x1234 {
		t.Errorf("DeviceID = %#x", c.DeviceID())
	}
	res, err := c.Call("get_prop", []string{"smoke", "temperature"})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	var decoded map[string]string
	if err := json.Unmarshal(res, &decoded); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if decoded["method"] != "get_prop" {
		t.Errorf("result = %v", decoded)
	}
	// Sequential calls work and IDs advance.
	for i := 0; i < 5; i++ {
		if _, err := c.Call("ping", nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestGatewayRPCErrors(t *testing.T) {
	g := startGateway(t)
	c, err := Dial(g.Addr().String(), testToken, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("boom", nil)
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) {
		t.Fatalf("want RPCError, got %v", err)
	}
	if rpcErr.Message != "kaboom" {
		t.Errorf("message = %q", rpcErr.Message)
	}
	_, err = c.Call("rpc_boom", nil)
	if !errors.As(err, &rpcErr) || rpcErr.Code != -9 {
		t.Errorf("typed rpc error lost: %v", err)
	}
}

func TestDialWrongTokenFails(t *testing.T) {
	g := startGateway(t)
	other := mustToken("ffeeddccbbaa99887766554433221100")
	// The hello reply decodes (it carries no encrypted payload), but the
	// first call must die: the gateway drops undecryptable datagrams.
	c, err := Dial(g.Addr().String(), other, WithTimeout(200*time.Millisecond), WithRetries(0))
	if err != nil {
		return // also acceptable: handshake failed outright
	}
	defer c.Close()
	if _, err := c.Call("get_prop", nil); err == nil {
		t.Error("call with wrong token should time out")
	}
}

func TestDialNoGateway(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", testToken, WithTimeout(100*time.Millisecond), WithRetries(0)); err == nil {
		t.Error("want handshake timeout")
	}
}

func TestClientClosed(t *testing.T) {
	g := startGateway(t)
	c, err := Dial(g.Addr().String(), testToken)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if _, err := c.Call("x", nil); err == nil {
		t.Error("call on closed client should fail")
	}
}

func TestGatewayRejectsGarbage(t *testing.T) {
	g := startGateway(t)
	// A client on the same socket keeps working after garbage arrives.
	c, err := Dial(g.Addr().String(), testToken, WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Throw junk at the gateway from a separate socket.
	junkConn, err := net.Dial("udp", g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer junkConn.Close()
	for _, junk := range [][]byte{{0x01}, bytes.Repeat([]byte{0xFF}, 48), []byte("GET / HTTP/1.1")} {
		if _, err := junkConn.Write(junk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Call("still_alive", nil); err != nil {
		t.Errorf("gateway died on garbage: %v", err)
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	if _, err := NewGateway(GatewayConfig{Token: testToken}); err == nil {
		t.Error("want handler error")
	}
	if _, err := NewGateway(GatewayConfig{Addr: "not-an-addr", Handler: echoHandler{}}); err == nil {
		t.Error("want address error")
	}
}

func TestRPCErrorString(t *testing.T) {
	e := &RPCError{Code: -1, Message: "x"}
	if e.Error() == "" {
		t.Error("empty error string")
	}
}

func TestHandlerFunc(t *testing.T) {
	h := HandlerFunc(func(m string, _ json.RawMessage) (any, error) {
		return m, nil
	})
	res, err := h.Handle("hi", nil)
	if err != nil || res != "hi" {
		t.Errorf("HandlerFunc = %v, %v", res, err)
	}
}

func TestEncodeTooLarge(t *testing.T) {
	big := Packet{Payload: bytes.Repeat([]byte{'x'}, MaxPacketSize)}
	if _, err := Encode(big, testToken); err == nil {
		t.Error("want size error")
	}
}
