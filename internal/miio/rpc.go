package miio

import (
	"encoding/json"
	"fmt"
)

// Request is the JSON-RPC-style call carried inside an encrypted payload,
// e.g. {"id":1,"method":"get_prop","params":["temperature","smoke"]}.
type Request struct {
	ID     int64           `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response answers one request.
type Response struct {
	ID     int64           `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *RPCError       `json:"error,omitempty"`
}

// RPCError is the in-band error object.
type RPCError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *RPCError) Error() string {
	return fmt.Sprintf("miio rpc error %d: %s", e.Code, e.Message)
}

// Handler serves decrypted method calls; the simulated gateway dispatches
// into the home through one.
type Handler interface {
	// Handle executes a method and returns a JSON-marshalable result.
	Handle(method string, params json.RawMessage) (any, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(method string, params json.RawMessage) (any, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(method string, params json.RawMessage) (any, error) {
	return f(method, params)
}
