package miio

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// ClientOption customises a client.
type ClientOption func(*Client)

// WithTimeout sets the per-attempt round-trip deadline (default 2s).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetries sets how many times a call is retried after a timeout
// (default 2 — UDP datagrams are fair game for loss).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithCallBudget caps one whole Call — every retry included — at d. Without
// it a call with r retries can take (r+1)× the per-attempt timeout, which
// is the unbounded tail the collection deadline work exists to remove.
// Zero means no overall budget beyond the per-attempt deadlines.
func WithCallBudget(d time.Duration) ClientOption {
	return func(c *Client) { c.callBudget = d }
}

// Client speaks the encrypted protocol to one gateway. It performs the
// hello handshake on dial (learning the gateway's device ID and stamp, as
// the vendor app does) and then issues encrypted method calls. Safe for
// concurrent use; calls are serialised on the socket.
type Client struct {
	token      Token
	timeout    time.Duration
	retries    int
	callBudget time.Duration

	mu       sync.Mutex
	conn     *net.UDPConn
	deviceID uint32
	stamp    uint32
	stampAt  time.Time
	nextID   int64
	closed   bool
}

// Dial connects, handshakes, and returns a ready client.
func Dial(addr string, token Token, opts ...ClientOption) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("miio: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("miio: dial: %w", err)
	}
	c := &Client{token: token, timeout: 2 * time.Second, retries: 2, conn: conn}
	for _, o := range opts {
		o(c)
	}
	if err := c.handshake(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return c, nil
}

// DeviceID returns the gateway's device ID learned during the handshake.
func (c *Client) DeviceID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deviceID
}

// Close releases the socket.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

func (c *Client) handshake() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	hello := EncodeHello()
	buf := make([]byte, MaxPacketSize)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if _, err := c.conn.Write(hello); err != nil {
			return fmt.Errorf("miio: hello write: %w", err)
		}
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("miio: deadline: %w", err)
		}
		n, err := c.conn.Read(buf)
		if err != nil {
			lastErr = err
			continue
		}
		pkt, err := Decode(buf[:n], c.token)
		if err != nil {
			lastErr = err
			continue
		}
		c.deviceID = pkt.DeviceID
		c.stamp = pkt.Stamp
		c.stampAt = time.Now()
		return nil
	}
	return fmt.Errorf("miio: handshake: %w", lastErr)
}

// Call issues one encrypted method call and decodes the result into a raw
// JSON message. RPC-level errors surface as *RPCError.
func (c *Client) Call(method string, params any) (json.RawMessage, error) {
	//iot:allow ctxrule Call is the context-free compat API; the client's own call budget still bounds it
	return c.CallContext(context.Background(), method, params)
}

// CallContext is Call with cancellation and an overall deadline: the call
// ends at the earliest of the context's deadline and the client's call
// budget, no matter how many retries remain. Cancellation is checked
// between attempts, and every socket read deadline is capped so a blocking
// read can never outlive the overall deadline.
func (c *Client) CallContext(ctx context.Context, method string, params any) (json.RawMessage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("miio: client closed")
	}
	overall, hasOverall, ctxBound := overallDeadline(ctx, c.callBudget)
	c.nextID++
	id := c.nextID
	var rawParams json.RawMessage
	if params != nil {
		data, err := json.Marshal(params)
		if err != nil {
			return nil, fmt.Errorf("miio: marshal params: %w", err)
		}
		rawParams = data
	}
	payload, err := json.Marshal(Request{ID: id, Method: method, Params: rawParams})
	if err != nil {
		return nil, fmt.Errorf("miio: marshal request: %w", err)
	}
	// Advance the device stamp estimate, as the vendor client does.
	stamp := c.stamp + uint32(time.Since(c.stampAt)/time.Second)
	raw, err := Encode(Packet{DeviceID: c.deviceID, Stamp: stamp, Payload: payload}, c.token)
	if err != nil {
		return nil, err
	}

	buf := make([]byte, MaxPacketSize)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, budgetErr(method, err, lastErr)
		}
		readDeadline := time.Now().Add(c.timeout)
		if hasOverall {
			if !overall.After(time.Now()) {
				// Attribute the expiry to whichever bound was binding: the
				// caller's context deadline (even if its timer has not fired
				// yet) or the client's own call budget.
				cause := error(context.DeadlineExceeded)
				if !ctxBound {
					cause = fmt.Errorf("call budget exhausted")
				}
				return nil, budgetErr(method, cause, lastErr)
			}
			if readDeadline.After(overall) {
				readDeadline = overall
			}
		}
		if _, err := c.conn.Write(raw); err != nil {
			return nil, fmt.Errorf("miio: write: %w", err)
		}
		if err := c.conn.SetReadDeadline(readDeadline); err != nil {
			return nil, fmt.Errorf("miio: deadline: %w", err)
		}
		for {
			n, err := c.conn.Read(buf)
			if err != nil {
				lastErr = err
				break // retry the send
			}
			pkt, err := Decode(buf[:n], c.token)
			if err != nil {
				lastErr = err
				continue // garbage datagram; keep reading until deadline
			}
			var resp Response
			if err := json.Unmarshal(pkt.Payload, &resp); err != nil {
				lastErr = fmt.Errorf("miio: bad response payload: %w", err)
				continue
			}
			if resp.ID != id {
				continue // stale response from a previous retry
			}
			if resp.Error != nil {
				return nil, resp.Error
			}
			return resp.Result, nil
		}
	}
	return nil, fmt.Errorf("miio: call %s: %w", method, lastErr)
}

// overallDeadline resolves the earliest of the context deadline and the
// client's call budget (measured from now); fromCtx reports whether the
// context deadline is the binding one.
func overallDeadline(ctx context.Context, budget time.Duration) (deadline time.Time, has, fromCtx bool) {
	if d, ok := ctx.Deadline(); ok {
		deadline, has, fromCtx = d, true, true
	}
	if budget > 0 {
		b := time.Now().Add(budget)
		if !has || b.Before(deadline) {
			deadline, has, fromCtx = b, true, false
		}
	}
	return deadline, has, fromCtx
}

// budgetErr reports a call abandoned by its overall deadline, keeping the
// last transport error for the post-mortem.
func budgetErr(method string, cause, lastErr error) error {
	if lastErr != nil && lastErr != cause {
		return fmt.Errorf("miio: call %s: %w (last attempt: %v)", method, cause, lastErr)
	}
	return fmt.Errorf("miio: call %s: %w", method, cause)
}
