package miio

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/md5"
	"fmt"
)

// deriveKeyIV implements the token-derived cipher parameters recovered from
// the vendor library: key = MD5(token), iv = MD5(key ‖ token).
func deriveKeyIV(token Token) (key, iv []byte) {
	k := md5.Sum(token[:])
	ivIn := make([]byte, 0, md5.Size+TokenSize)
	ivIn = append(ivIn, k[:]...)
	ivIn = append(ivIn, token[:]...)
	v := md5.Sum(ivIn)
	return k[:], v[:]
}

// encrypt seals a plaintext payload with AES-128-CBC + PKCS#7 padding.
func encrypt(plaintext []byte, token Token) ([]byte, error) {
	key, iv := deriveKeyIV(token)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("miio: cipher: %w", err)
	}
	padded := pkcs7Pad(plaintext, block.BlockSize())
	out := make([]byte, len(padded))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out, padded)
	return out, nil
}

// decrypt opens an AES-128-CBC ciphertext and strips the PKCS#7 padding.
func decrypt(ciphertext []byte, token Token) ([]byte, error) {
	key, iv := deriveKeyIV(token)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("miio: cipher: %w", err)
	}
	if len(ciphertext) == 0 || len(ciphertext)%block.BlockSize() != 0 {
		return nil, fmt.Errorf("miio: ciphertext length %d not a block multiple", len(ciphertext))
	}
	out := make([]byte, len(ciphertext))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(out, ciphertext)
	return pkcs7Unpad(out, block.BlockSize())
}

func pkcs7Pad(data []byte, blockSize int) []byte {
	pad := blockSize - len(data)%blockSize
	out := make([]byte, len(data)+pad)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(pad)
	}
	return out
}

func pkcs7Unpad(data []byte, blockSize int) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("miio: empty padded payload")
	}
	pad := int(data[len(data)-1])
	if pad == 0 || pad > blockSize || pad > len(data) {
		return nil, fmt.Errorf("miio: invalid padding %d", pad)
	}
	for _, b := range data[len(data)-pad:] {
		if int(b) != pad {
			return nil, fmt.Errorf("miio: corrupt padding")
		}
	}
	return data[:len(data)-pad], nil
}
