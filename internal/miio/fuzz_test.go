package miio

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary datagrams at the packet decoder: it must
// reject or decode, never panic, and anything it accepts must re-encode to
// a decodable packet.
func FuzzDecode(f *testing.F) {
	hello := EncodeHello()
	f.Add(hello)
	f.Add(EncodeHelloReply(0xDEAD, 42))
	if sealed, err := Encode(Packet{DeviceID: 7, Stamp: 9, Payload: []byte(`{"id":1}`)}, testToken); err == nil {
		f.Add(sealed)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x21, 0x31}, 40))

	f.Fuzz(func(t *testing.T, raw []byte) {
		pkt, err := Decode(raw, testToken)
		if err != nil {
			return
		}
		if len(pkt.Payload) == 0 {
			return // hello-style packet
		}
		resealed, err := Encode(pkt, testToken)
		if err != nil {
			t.Fatalf("accepted packet does not re-encode: %v", err)
		}
		back, err := Decode(resealed, testToken)
		if err != nil {
			t.Fatalf("re-encoded packet does not decode: %v", err)
		}
		if !bytes.Equal(back.Payload, pkt.Payload) {
			t.Fatal("payload changed across re-encode")
		}
	})
}

// FuzzPKCS7 checks pad/unpad as exact inverses and unpad's robustness to
// arbitrary input.
func FuzzPKCS7(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{16}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		padded := pkcs7Pad(data, 16)
		if len(padded)%16 != 0 {
			t.Fatal("padding not block-aligned")
		}
		back, err := pkcs7Unpad(padded, 16)
		if err != nil {
			t.Fatalf("unpad of freshly padded data: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("pad/unpad not inverse")
		}
		// Unpad of the raw input must not panic (errors are fine).
		_, _ = pkcs7Unpad(data, 16)
	})
}
