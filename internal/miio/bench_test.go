package miio

import "testing"

func BenchmarkEncode(b *testing.B) {
	p := Packet{DeviceID: 1, Stamp: 2, Payload: []byte(`{"id":1,"method":"get_prop","params":["alarm","temperature","aqi"]}`)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(p, testToken); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	p := Packet{DeviceID: 1, Stamp: 2, Payload: []byte(`{"id":1,"method":"get_prop","params":["alarm","temperature","aqi"]}`)}
	raw, err := Encode(p, testToken)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw, testToken); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripOverUDP(b *testing.B) {
	g, err := NewGateway(GatewayConfig{DeviceID: 1, Token: testToken, Handler: echoHandler{}})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	c, err := Dial(g.Addr().String(), testToken)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("ping", nil); err != nil {
			b.Fatal(err)
		}
	}
}
