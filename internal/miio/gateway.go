package miio

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// GatewayConfig configures a simulated gateway device.
type GatewayConfig struct {
	// Addr is the UDP listen address; ":0" picks a free port.
	Addr string
	// DeviceID identifies the gateway on the wire.
	DeviceID uint32
	// Token is the shared secret; clients must hold the same token.
	Token Token
	// Handler serves decrypted method calls.
	Handler Handler
	// Now supplies the stamp clock; defaults to time.Now.
	Now func() time.Time
}

// Gateway is a simulated Xiaomi-style gateway: it answers hello handshakes
// and encrypted method calls over UDP. It stands in for the physical device
// fleet of the paper's testbed; the wire format and crypto are the real
// protocol's.
type Gateway struct {
	cfg   GatewayConfig
	conn  *net.UDPConn
	epoch time.Time

	done chan struct{}
	wg   sync.WaitGroup
}

// NewGateway binds the socket and starts serving.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("miio: gateway needs a handler")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("miio: resolve %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("miio: listen: %w", err)
	}
	g := &Gateway{
		cfg:   cfg,
		conn:  conn,
		epoch: cfg.Now(),
		done:  make(chan struct{}),
	}
	g.wg.Add(1)
	go g.serve()
	return g, nil
}

// Addr returns the bound UDP address.
func (g *Gateway) Addr() net.Addr { return g.conn.LocalAddr() }

// Close stops the gateway and waits for the serve loop to exit.
func (g *Gateway) Close() error {
	close(g.done)
	err := g.conn.Close()
	g.wg.Wait()
	return err
}

// stamp is the device uptime clock carried in packet headers.
func (g *Gateway) stamp() uint32 {
	return uint32(g.cfg.Now().Sub(g.epoch) / time.Second)
}

func (g *Gateway) serve() {
	defer g.wg.Done()
	buf := make([]byte, MaxPacketSize)
	for {
		n, remote, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-g.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient read error: keep serving
		}
		raw := make([]byte, n)
		copy(raw, buf[:n])
		g.handleDatagram(raw, remote)
	}
}

func (g *Gateway) handleDatagram(raw []byte, remote *net.UDPAddr) {
	if IsHello(raw) {
		reply := EncodeHelloReply(g.cfg.DeviceID, g.stamp())
		_, _ = g.conn.WriteToUDP(reply, remote)
		return
	}
	pkt, err := Decode(raw, g.cfg.Token)
	if err != nil {
		// Undecryptable datagrams (wrong token, corruption) are dropped,
		// exactly like the physical device.
		return
	}
	var req Request
	if err := json.Unmarshal(pkt.Payload, &req); err != nil {
		g.reply(remote, Response{Error: &RPCError{Code: -32700, Message: "parse error"}})
		return
	}
	resp := Response{ID: req.ID}
	result, err := g.cfg.Handler.Handle(req.Method, req.Params)
	if err != nil {
		var rpcErr *RPCError
		if errors.As(err, &rpcErr) {
			resp.Error = rpcErr
		} else {
			resp.Error = &RPCError{Code: -1, Message: err.Error()}
		}
	} else {
		data, err := json.Marshal(result)
		if err != nil {
			resp.Error = &RPCError{Code: -2, Message: "unmarshalable result"}
		} else {
			resp.Result = data
		}
	}
	g.reply(remote, resp)
}

func (g *Gateway) reply(remote *net.UDPAddr, resp Response) {
	payload, err := json.Marshal(resp)
	if err != nil {
		return
	}
	raw, err := Encode(Packet{DeviceID: g.cfg.DeviceID, Stamp: g.stamp(), Payload: payload}, g.cfg.Token)
	if err != nil {
		return
	}
	_, _ = g.conn.WriteToUDP(raw, remote)
}
