package miio

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestManyClientsConcurrently hammers one gateway from several clients at
// once: every call must come back with its own result (IDs never cross).
func TestManyClientsConcurrently(t *testing.T) {
	g := startGateway(t)
	const clients = 8
	const callsPerClient = 25

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := Dial(g.Addr().String(), testToken, WithTimeout(2*time.Second))
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < callsPerClient; i++ {
				res, err := client.Call("echo", map[string]int{"client": id, "call": i})
				if err != nil {
					errs <- err
					return
				}
				var decoded map[string]string
				if err := json.Unmarshal(res, &decoded); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent client: %v", err)
	}
}

// TestClientSerialisesConcurrentCalls verifies one client used from many
// goroutines stays consistent (calls are serialised on the socket).
func TestClientSerialisesConcurrentCalls(t *testing.T) {
	g := startGateway(t)
	client, err := Dial(g.Addr().String(), testToken, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Call("ping", nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("shared client: %v", err)
	}
}
