package miio

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyGateway is a raw UDP server speaking the encrypted protocol that
// deliberately drops the first `drops` method-call datagrams — the lossy
// vendor device the retry and budget machinery exists for. Hellos are
// always answered so Dial succeeds.
type flakyGateway struct {
	conn  *net.UDPConn
	token Token
	drops int64
	seen  atomic.Int64
	wg    sync.WaitGroup
}

func startFlakyGateway(t *testing.T, drops int64) *flakyGateway {
	t.Helper()
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	g := &flakyGateway{conn: conn, token: testToken, drops: drops}
	g.wg.Add(1)
	go g.serve()
	t.Cleanup(func() {
		_ = conn.Close()
		g.wg.Wait()
	})
	return g
}

func (g *flakyGateway) addr() string { return g.conn.LocalAddr().String() }

// dropped reports how many call datagrams were swallowed.
func (g *flakyGateway) dropped() int64 {
	n := g.seen.Load()
	if n > g.drops {
		return g.drops
	}
	return n
}

func (g *flakyGateway) serve() {
	defer g.wg.Done()
	buf := make([]byte, MaxPacketSize)
	for {
		n, remote, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		raw := buf[:n]
		if IsHello(raw) {
			_, _ = g.conn.WriteToUDP(EncodeHelloReply(0x77, 1), remote)
			continue
		}
		if g.seen.Add(1) <= g.drops {
			continue // the lossy network eats the datagram
		}
		pkt, err := Decode(raw, g.token)
		if err != nil {
			continue
		}
		var req Request
		if err := json.Unmarshal(pkt.Payload, &req); err != nil {
			continue
		}
		result, _ := json.Marshal("pong")
		payload, _ := json.Marshal(Response{ID: req.ID, Result: result})
		out, err := Encode(Packet{DeviceID: 0x77, Stamp: 1, Payload: payload}, g.token)
		if err != nil {
			continue
		}
		_, _ = g.conn.WriteToUDP(out, remote)
	}
}

// TestCallContextRetriesThroughDrops: one dropped datagram is absorbed by
// the retry loop and the call still succeeds.
func TestCallContextRetriesThroughDrops(t *testing.T) {
	g := startFlakyGateway(t, 1)
	c, err := Dial(g.addr(), testToken, WithTimeout(100*time.Millisecond), WithRetries(3))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	res, err := c.CallContext(context.Background(), "ping", nil)
	if err != nil {
		t.Fatalf("CallContext through a drop: %v", err)
	}
	var s string
	if err := json.Unmarshal(res, &s); err != nil || s != "pong" {
		t.Fatalf("result = %s, %v", res, err)
	}
	if g.dropped() != 1 {
		t.Errorf("dropped = %d, want 1", g.dropped())
	}
}

// TestCallBudgetCapsRetries: with every datagram dropped, the overall call
// budget ends the call long before the per-attempt retries would — the
// unbounded (retries+1)×timeout tail is gone.
func TestCallBudgetCapsRetries(t *testing.T) {
	g := startFlakyGateway(t, 1_000_000)
	c, err := Dial(g.addr(), testToken,
		WithTimeout(100*time.Millisecond),
		WithRetries(20), // 2.1s of attempts without a budget
		WithCallBudget(150*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.CallContext(context.Background(), "ping", nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want budget failure")
	}
	if !strings.Contains(err.Error(), "call budget exhausted") {
		t.Errorf("err = %v, want the budget named", err)
	}
	if elapsed > time.Second {
		t.Errorf("call ran %v despite a 150ms budget", elapsed)
	}
}

// TestCallContextHonoursDeadline: a context deadline bounds the whole call
// the same way, and surfaces as context.DeadlineExceeded.
func TestCallContextHonoursDeadline(t *testing.T) {
	g := startFlakyGateway(t, 1_000_000)
	c, err := Dial(g.addr(), testToken, WithTimeout(time.Second), WithRetries(20))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.CallContext(ctx, "ping", nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > time.Second {
		t.Errorf("call ran %v despite an 80ms deadline", elapsed)
	}
}

// TestCallContextCancelled: a pre-cancelled context never touches the wire.
func TestCallContextCancelled(t *testing.T) {
	g := startFlakyGateway(t, 0)
	c, err := Dial(g.addr(), testToken, WithTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CallContext(ctx, "ping", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if g.seen.Load() != 0 {
		t.Errorf("cancelled call sent %d datagrams", g.seen.Load())
	}
}

// TestCallDelegatesToContext: the legacy Call keeps working against the
// same machinery (background context, no budget).
func TestCallDelegatesToContext(t *testing.T) {
	g := startFlakyGateway(t, 0)
	c, err := Dial(g.addr(), testToken, WithTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Call("ping", nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
}
