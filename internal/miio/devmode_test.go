package miio

import (
	"encoding/json"
	"net"
	"testing"
	"time"
)

func startDevMode(t *testing.T, ttl time.Duration) *DevMode {
	t.Helper()
	d, err := NewDevMode(DevModeConfig{TTL: ttl})
	if err != nil {
		t.Fatalf("NewDevMode: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

func waitReport(t *testing.T, l *DevModeListener) Report {
	t.Helper()
	select {
	case r, ok := <-l.Reports():
		if !ok {
			t.Fatal("report channel closed")
		}
		return r
	case <-time.After(2 * time.Second):
		t.Fatal("no report within 2s")
	}
	return Report{}
}

func TestDevModeSubscribeAndPush(t *testing.T) {
	d := startDevMode(t, time.Minute)
	l, err := SubscribeDevMode(d.Addr().String(), 8)
	if err != nil {
		t.Fatalf("SubscribeDevMode: %v", err)
	}
	defer l.Close()
	if got := d.Subscribers(); got != 1 {
		t.Fatalf("subscribers = %d", got)
	}
	if err := d.Push("lumi.sensor_smoke", "158d0001", map[string]any{"alarm": "1"}); err != nil {
		t.Fatalf("Push: %v", err)
	}
	r := waitReport(t, l)
	if r.Model != "lumi.sensor_smoke" || r.SID != "158d0001" {
		t.Errorf("report = %+v", r)
	}
	var data map[string]string
	if err := json.Unmarshal(r.Data, &data); err != nil || data["alarm"] != "1" {
		t.Errorf("data = %s", r.Data)
	}
}

func TestDevModeMultipleSubscribers(t *testing.T) {
	d := startDevMode(t, time.Minute)
	var listeners []*DevModeListener
	for i := 0; i < 3; i++ {
		l, err := SubscribeDevMode(d.Addr().String(), 8)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		listeners = append(listeners, l)
	}
	if got := d.Subscribers(); got != 3 {
		t.Fatalf("subscribers = %d", got)
	}
	if err := d.Push("lumi.gateway", "gw", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	for i, l := range listeners {
		r := waitReport(t, l)
		if r.SID != "gw" {
			t.Errorf("listener %d report = %+v", i, r)
		}
	}
}

func TestDevModeUnsubscribe(t *testing.T) {
	d := startDevMode(t, time.Minute)
	l, err := SubscribeDevMode(d.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	// Give the unsubscribe datagram a moment to land.
	deadline := time.Now().Add(2 * time.Second)
	for d.Subscribers() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := d.Subscribers(); got != 0 {
		t.Errorf("subscribers after unsubscribe = %d", got)
	}
}

func TestDevModeSubscriptionExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	d, err := NewDevMode(DevModeConfig{TTL: time.Second, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	l, err := SubscribeDevMode(d.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if d.Subscribers() != 1 {
		t.Fatal("no subscriber")
	}
	// Advance past the TTL: the subscriber is reaped on the next push.
	now = now.Add(time.Hour)
	if d.Subscribers() != 0 {
		t.Error("expired subscription still counted")
	}
	if err := d.Push("m", "s", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case r, ok := <-l.Reports():
		if ok {
			t.Errorf("expired subscriber still got report %+v", r)
		}
	case <-time.After(300 * time.Millisecond):
		// expected: nothing arrives
	}
}

func TestDevModeIgnoresGarbage(t *testing.T) {
	d := startDevMode(t, time.Minute)
	conn, err := net.Dial("udp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, junk := range []string{"", "not json", `{"cmd":"fireworks"}`} {
		if _, err := conn.Write([]byte(junk)); err != nil {
			t.Fatal(err)
		}
	}
	// Channel still works after garbage.
	l, err := SubscribeDevMode(d.Addr().String(), 8)
	if err != nil {
		t.Fatalf("subscribe after garbage: %v", err)
	}
	defer l.Close()
	if err := d.Push("m", "s", map[string]int{"ok": 1}); err != nil {
		t.Fatal(err)
	}
	waitReport(t, l)
}

func TestSubscribeDevModeNoServer(t *testing.T) {
	if _, err := SubscribeDevMode("127.0.0.1:1", 8); err == nil {
		t.Error("want ack timeout")
	}
}

func TestDevModePushUnmarshalable(t *testing.T) {
	d := startDevMode(t, time.Minute)
	if err := d.Push("m", "s", func() {}); err == nil {
		t.Error("want marshal error")
	}
}
