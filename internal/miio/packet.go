// Package miio implements the Xiaomi-style encrypted UDP device protocol
// the paper reverse-engineered for its sensor data collector (§IV-B-1: the
// MD5 and AES_CBC encryption algorithms recovered from the vendor's native
// library, applied to socket datagrams). The wire format mirrors the real
// protocol: a 32-byte header carrying a magic, total length, device ID,
// timestamp and an MD5 checksum keyed on the 16-byte device token, followed
// by an AES-128-CBC-encrypted JSON payload whose key and IV are both
// MD5-derived from the token.
//
// The package provides the codec, a simulated gateway server backed by the
// home simulator, and the client the IDS collector uses.
package miio

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"fmt"
)

// Protocol constants.
const (
	// Magic is the 2-byte packet prefix.
	Magic uint16 = 0x2131
	// HeaderSize is the fixed header length in bytes.
	HeaderSize = 32
	// TokenSize is the device token length in bytes.
	TokenSize = 16
	// MaxPacketSize bounds one datagram.
	MaxPacketSize = 64 * 1024
)

// Token is the 16-byte shared secret provisioned per device.
type Token [TokenSize]byte

// ParseToken decodes a 32-hex-character token string.
func ParseToken(hexStr string) (Token, error) {
	var t Token
	if len(hexStr) != 2*TokenSize {
		return t, fmt.Errorf("miio: token must be %d hex chars, got %d", 2*TokenSize, len(hexStr))
	}
	for i := 0; i < TokenSize; i++ {
		var b byte
		if _, err := fmt.Sscanf(hexStr[2*i:2*i+2], "%02x", &b); err != nil {
			return t, fmt.Errorf("miio: bad token hex at %d: %w", 2*i, err)
		}
		t[i] = b
	}
	return t, nil
}

// String renders the token as lowercase hex.
func (t Token) String() string {
	return fmt.Sprintf("%x", t[:])
}

// Packet is one decoded protocol datagram.
type Packet struct {
	DeviceID uint32
	Stamp    uint32
	Payload  []byte // decrypted JSON payload; empty for hello packets
}

// helloChecksum fills the checksum field of a hello packet (all 0xFF on
// request; the device's token would go here on provisioning responses, but
// the simulated fleet returns 0xFF too, matching already-provisioned
// devices).
var helloChecksum = bytes.Repeat([]byte{0xff}, 16)

// EncodeHello builds the discovery handshake datagram.
func EncodeHello() []byte {
	buf := make([]byte, HeaderSize)
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	binary.BigEndian.PutUint16(buf[2:4], HeaderSize)
	for i := 4; i < 16; i++ {
		buf[i] = 0xff
	}
	copy(buf[16:32], helloChecksum)
	return buf
}

// IsHello reports whether a raw datagram is a hello packet.
func IsHello(raw []byte) bool {
	if len(raw) != HeaderSize {
		return false
	}
	if binary.BigEndian.Uint16(raw[0:2]) != Magic {
		return false
	}
	return binary.BigEndian.Uint16(raw[2:4]) == HeaderSize
}

// EncodeHelloReply builds the gateway's handshake answer carrying its
// device ID and clock stamp.
func EncodeHelloReply(deviceID, stamp uint32) []byte {
	buf := make([]byte, HeaderSize)
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	binary.BigEndian.PutUint16(buf[2:4], HeaderSize)
	binary.BigEndian.PutUint32(buf[8:12], deviceID)
	binary.BigEndian.PutUint32(buf[12:16], stamp)
	copy(buf[16:32], helloChecksum)
	return buf
}

// Encode seals a payload into a datagram: AES-CBC encrypt, then stamp the
// header and fill the MD5 checksum over header[0:16] ‖ token ‖ ciphertext.
func Encode(p Packet, token Token) ([]byte, error) {
	encrypted, err := encrypt(p.Payload, token)
	if err != nil {
		return nil, err
	}
	total := HeaderSize + len(encrypted)
	if total > MaxPacketSize {
		return nil, fmt.Errorf("miio: packet size %d exceeds limit", total)
	}
	buf := make([]byte, total)
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	binary.BigEndian.PutUint16(buf[2:4], uint16(total))
	binary.BigEndian.PutUint32(buf[8:12], p.DeviceID)
	binary.BigEndian.PutUint32(buf[12:16], p.Stamp)
	copy(buf[HeaderSize:], encrypted)

	sum := checksum(buf[:16], token, encrypted)
	copy(buf[16:32], sum)
	return buf, nil
}

// Decode verifies and opens a datagram. Hello packets decode to a Packet
// with an empty payload.
func Decode(raw []byte, token Token) (Packet, error) {
	if len(raw) < HeaderSize {
		return Packet{}, fmt.Errorf("miio: datagram too short: %d bytes", len(raw))
	}
	if binary.BigEndian.Uint16(raw[0:2]) != Magic {
		return Packet{}, fmt.Errorf("miio: bad magic %#04x", binary.BigEndian.Uint16(raw[0:2]))
	}
	total := int(binary.BigEndian.Uint16(raw[2:4]))
	if total != len(raw) {
		return Packet{}, fmt.Errorf("miio: length field %d, datagram %d", total, len(raw))
	}
	p := Packet{
		DeviceID: binary.BigEndian.Uint32(raw[8:12]),
		Stamp:    binary.BigEndian.Uint32(raw[12:16]),
	}
	if total == HeaderSize {
		return p, nil // hello / hello-reply
	}
	encrypted := raw[HeaderSize:]
	want := checksum(raw[:16], token, encrypted)
	if !bytes.Equal(want, raw[16:32]) {
		return Packet{}, fmt.Errorf("miio: checksum mismatch (wrong token or corrupted datagram)")
	}
	payload, err := decrypt(encrypted, token)
	if err != nil {
		return Packet{}, err
	}
	p.Payload = payload
	return p, nil
}

// checksum computes MD5(header[0:16] ‖ token ‖ ciphertext).
func checksum(header16 []byte, token Token, encrypted []byte) []byte {
	h := md5.New()
	h.Write(header16)
	h.Write(token[:])
	h.Write(encrypted)
	return h.Sum(nil)
}
