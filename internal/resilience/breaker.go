package resilience

import (
	"fmt"
	"sync"
	"time"
)

// State is a circuit breaker state.
type State int

// The three breaker states.
const (
	StateClosed State = iota
	StateOpen
	StateHalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// OpenError is returned by Breaker.Allow while the breaker is open.
// RetryAfter is how long until the breaker will admit a half-open probe —
// the serving layer translates it into an HTTP Retry-After header.
type OpenError struct {
	Name       string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OpenError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("resilience: breaker %q open (retry after %v)", e.Name, e.RetryAfter)
	}
	return fmt.Sprintf("resilience: breaker open (retry after %v)", e.RetryAfter)
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Name labels OpenError and health reports.
	Name string
	// FailureThreshold is how many consecutive failures trip the breaker
	// (default 5).
	FailureThreshold int
	// OpenTimeout is how long a tripped breaker stays open before admitting
	// a half-open probe (default 30s).
	OpenTimeout time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close the
	// breaker again (default 1).
	HalfOpenSuccesses int
	// Now is the breaker's clock; defaults to time.Now. Injectable so fault
	// campaigns replay deterministically.
	Now func() time.Time
	// OnStateChange, when non-nil, is called on every state transition
	// (closed→open, open→half-open, half-open→open, half-open→closed) —
	// the observability layer counts transitions through it. It runs with
	// the breaker's lock held: it must be fast and must not call back into
	// the breaker.
	OnStateChange func(from, to State)
}

// Breaker is a per-source circuit breaker: consecutive failures trip it
// open, open calls are rejected without touching the source, and after
// OpenTimeout a limited number of half-open probes decide whether to close
// it again. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	openedAt  time.Time
}

// NewBreaker builds a breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = 30 * time.Second
	}
	if cfg.HalfOpenSuccesses <= 0 {
		cfg.HalfOpenSuccesses = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// setStateLocked moves the state machine and fires the transition hook.
// Callers hold b.mu.
func (b *Breaker) setStateLocked(to State) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// state transitions open→half-open once the open timeout has elapsed.
// Callers hold b.mu.
func (b *Breaker) resolveLocked() State {
	if b.state == StateOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		b.setStateLocked(StateHalfOpen)
		b.successes = 0
	}
	return b.state
}

// State returns the current state, resolving an elapsed open timeout into
// half-open.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.resolveLocked()
}

// Allow reports whether a call may proceed. While open it returns an
// *OpenError carrying the remaining wait; in half-open it admits probes.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.resolveLocked() == StateOpen {
		return &OpenError{Name: b.cfg.Name, RetryAfter: b.cfg.OpenTimeout - b.cfg.Now().Sub(b.openedAt)}
	}
	return nil
}

// Record feeds one call outcome into the state machine. A nil err is a
// success; in half-open, HalfOpenSuccesses consecutive successes close the
// breaker and any failure reopens it.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.resolveLocked() {
	case StateClosed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.setStateLocked(StateOpen)
			b.openedAt = b.cfg.Now()
		}
	case StateHalfOpen:
		if err != nil {
			b.setStateLocked(StateOpen)
			b.openedAt = b.cfg.Now()
			b.failures = b.cfg.FailureThreshold
			return
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.setStateLocked(StateClosed)
			b.failures = 0
		}
	case StateOpen:
		// A straggler finishing after the trip; open state is driven by the
		// clock, not by late results.
	}
}

// Do is the composed call path: Allow, run op, Record. The *OpenError from
// a rejected call is returned unwrapped so callers can surface RetryAfter.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Record(err)
	return err
}
