// Package resilience is the fault-handling substrate of the collection
// pipeline: deterministic retry with exponential backoff and seedable
// jitter, per-attempt and overall deadlines, a per-source circuit breaker,
// and a health registry the serving layer exposes.
//
// Like package par, the package's contract is determinism: a retry
// schedule is a pure function of its Policy (the jitter stream is seeded),
// and a breaker's transitions are a pure function of the recorded outcome
// sequence and the injected clock. Nothing in here consults ambient
// randomness, so fault-injection campaigns replay bit-identically.
package resilience

import "errors"

// permanentError marks an error that retrying cannot fix (bad credentials,
// malformed request, 4xx).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Policy.Do gives up immediately instead of
// retrying. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}
