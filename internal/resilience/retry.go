package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Policy describes a bounded retry loop: up to MaxAttempts tries separated
// by exponential backoff with seeded jitter, each attempt optionally capped
// by AttemptTimeout, the whole loop capped by the caller's context.
//
// A Policy is a value: it carries no hidden state, and Schedule is a pure
// function of the exported fields, so two equal policies always retry on
// the same instants relative to their start.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 3; values below 1 are treated as the default).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomised, in [0, 1]:
	// the effective delay is d * (1 - Jitter/2 + Jitter*u) for a seeded
	// uniform u (default 0, i.e. no jitter).
	Jitter float64
	// Seed seeds the jitter stream; equal seeds give bit-identical
	// schedules.
	Seed int64
	// AttemptTimeout, when positive, caps each attempt with a per-attempt
	// context deadline.
	AttemptTimeout time.Duration
	// Sleep overrides the inter-attempt wait (tests); nil sleeps for real,
	// honouring ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnAttempt, when non-nil, is observability's tap on the loop: it is
	// called immediately before each try with the 0-based attempt index
	// (so index > 0 means a retry). It must be fast and must not call back
	// into the policy; it has no effect on Schedule or the retry timing.
	OnAttempt func(attempt int)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Schedule returns the waits between attempts — MaxAttempts-1 durations,
// bit-identical for equal policies (the jitter stream is seeded from Seed).
func (p Policy) Schedule() []time.Duration {
	p = p.withDefaults()
	if p.MaxAttempts == 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]time.Duration, p.MaxAttempts-1)
	d := float64(p.BaseDelay)
	for i := range out {
		wait := d
		if p.Jitter > 0 {
			wait = d * (1 - p.Jitter/2 + p.Jitter*rng.Float64())
		}
		if wait > float64(p.MaxDelay) {
			wait = float64(p.MaxDelay)
		}
		out[i] = time.Duration(wait)
		d *= p.Multiplier
		if d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
		}
	}
	return out
}

// Do runs op until it succeeds, returns a Permanent error, exhausts
// MaxAttempts, or ctx is done. Each attempt sees a child context capped by
// AttemptTimeout (when set); the overall loop is capped by ctx itself.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	schedule := p.Schedule()
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (after %d attempts: %v)", err, attempt, lastErr)
			}
			return err
		}
		if p.OnAttempt != nil {
			p.OnAttempt(attempt)
		}
		attemptCtx := ctx
		var cancel context.CancelFunc
		if p.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := op(attemptCtx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if IsPermanent(err) {
			return err
		}
		if attempt < len(schedule) {
			if err := p.sleep(ctx, schedule[attempt]); err != nil {
				return fmt.Errorf("%w (after %d attempts: %v)", err, attempt+1, lastErr)
			}
		}
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", p.MaxAttempts, lastErr)
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
