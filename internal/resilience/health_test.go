package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestRegistryReportAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Register("miio", true)
	r.Register("smartthings", false)

	rows := r.Snapshot()
	if len(rows) != 2 || rows[0].Name != "miio" || rows[1].Name != "smartthings" {
		t.Fatalf("snapshot = %+v, want registration order miio, smartthings", rows)
	}
	if rows[0].State != DataUnknown {
		t.Fatalf("pre-collect state = %q, want unknown", rows[0].State)
	}
	if r.Healthy() {
		t.Fatal("registry with a never-collected required source must not be healthy")
	}

	at := time.Unix(1700000000, 0)
	r.Report("miio", DataFresh, "closed", at, nil)
	r.Report("smartthings", DataMissing, "open", at, errors.New("502"))
	if !r.Healthy() {
		t.Fatal("required source fresh: registry should be healthy")
	}
	rows = r.Snapshot()
	if rows[0].LastSuccess != at || rows[0].ConsecutiveFailures != 0 {
		t.Fatalf("miio row = %+v", rows[0])
	}
	if rows[1].LastError != "502" || rows[1].ConsecutiveFailures != 1 || rows[1].Breaker != "open" {
		t.Fatalf("smartthings row = %+v", rows[1])
	}

	// Stale data still counts as serving; a missing required source does not.
	r.Report("miio", DataStale, "closed", at, errors.New("timeout"))
	if !r.Healthy() {
		t.Fatal("stale required source is still serving: should be healthy")
	}
	r.Report("miio", DataMissing, "open", at, errors.New("timeout"))
	if r.Healthy() {
		t.Fatal("missing required source: must be unhealthy")
	}
	if got := r.Snapshot()[0].ConsecutiveFailures; got != 2 {
		t.Fatalf("consecutive failures = %d, want 2", got)
	}
}

func TestRegistryUnregisteredReport(t *testing.T) {
	r := NewRegistry()
	r.Report("ghost", DataFresh, "", time.Unix(0, 0), nil)
	rows := r.Snapshot()
	if len(rows) != 1 || rows[0].Name != "ghost" {
		t.Fatalf("snapshot = %+v", rows)
	}
	// Optional by default, so a fresh ghost keeps the registry healthy.
	if !r.Healthy() {
		t.Fatal("optional sources never make the registry unhealthy")
	}
}
