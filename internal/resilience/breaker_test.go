package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, openFor time.Duration, probes int) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := NewBreaker(BreakerConfig{
		Name: "src", FailureThreshold: threshold, OpenTimeout: openFor,
		HalfOpenSuccesses: probes, Now: clk.now,
	})
	return b, clk
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute, 1)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		b.Record(boom)
		if got := b.State(); got != StateClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
	}
	b.Record(boom)
	if got := b.State(); got != StateOpen {
		t.Fatalf("after threshold state = %v, want open", got)
	}
	var openErr *OpenError
	if err := b.Allow(); !errors.As(err, &openErr) {
		t.Fatalf("Allow while open = %v, want *OpenError", err)
	} else if openErr.RetryAfter != time.Minute {
		t.Fatalf("RetryAfter = %v, want 1m", openErr.RetryAfter)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute, 1)
	boom := errors.New("boom")
	b.Record(boom)
	b.Record(boom)
	b.Record(nil) // streak broken
	b.Record(boom)
	b.Record(boom)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state = %v, want closed (failures were not consecutive)", got)
	}
}

func TestBreakerHalfOpenProbeClosesOrReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute, 2)
	b.Record(errors.New("boom"))
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clk.advance(59 * time.Second)
	if err := b.Allow(); err == nil {
		t.Fatal("Allow before open timeout should be rejected")
	}
	clk.advance(time.Second)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after timeout = %v, want half-open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	// A probe failure reopens immediately.
	b.Record(errors.New("still down"))
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// Wait out the timeout again; two successes are needed to close.
	clk.advance(time.Minute)
	b.Record(nil)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", got)
	}
	b.Record(nil)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", got)
	}
}

func TestBreakerDo(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute, 1)
	boom := errors.New("boom")
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want %v", err, boom)
	}
	calls := 0
	var openErr *OpenError
	if err := b.Do(func() error { calls++; return nil }); !errors.As(err, &openErr) {
		t.Fatalf("Do while open = %v, want *OpenError", err)
	}
	if calls != 0 {
		t.Fatal("open breaker must not invoke op")
	}
	clk.advance(time.Minute)
	if err := b.Do(func() error { calls++; return nil }); err != nil {
		t.Fatalf("half-open Do: %v", err)
	}
	if calls != 1 || b.State() != StateClosed {
		t.Fatalf("calls = %d, state = %v; want 1, closed", calls, b.State())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{StateClosed: "closed", StateOpen: "open", StateHalfOpen: "half-open"} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
