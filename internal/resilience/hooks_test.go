package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBreakerOnStateChangeSeesEveryTransition drives the full state machine
// and checks the hook observes each edge exactly once, in order.
func TestBreakerOnStateChangeSeesEveryTransition(t *testing.T) {
	type edge struct{ from, to State }
	var got []edge
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := NewBreaker(BreakerConfig{
		Name: "src", FailureThreshold: 2, OpenTimeout: time.Minute, HalfOpenSuccesses: 1,
		Now:           clk.now,
		OnStateChange: func(from, to State) { got = append(got, edge{from, to}) },
	})
	boom := errors.New("boom")
	b.Record(boom)
	b.Record(boom) // closed → open
	clk.advance(2 * time.Minute)
	b.State()      // open → half-open
	b.Record(boom) // half-open → open (failed probe)
	clk.advance(2 * time.Minute)
	b.State()     // open → half-open
	b.Record(nil) // half-open → closed
	want := []edge{
		{StateClosed, StateOpen},
		{StateOpen, StateHalfOpen},
		{StateHalfOpen, StateOpen},
		{StateOpen, StateHalfOpen},
		{StateHalfOpen, StateClosed},
	}
	if len(got) != len(want) {
		t.Fatalf("saw %d transitions %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %v→%v, want %v→%v",
				i, got[i].from, got[i].to, want[i].from, want[i].to)
		}
	}
}

// TestBreakerOnStateChangeNotFiredWithoutTransition: repeated failures past
// the threshold and repeated successes must not re-fire the hook.
func TestBreakerOnStateChangeNotFiredWithoutTransition(t *testing.T) {
	fired := 0
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1, OpenTimeout: time.Minute,
		Now:           clk.now,
		OnStateChange: func(from, to State) { fired++ },
	})
	b.Record(nil)
	b.Record(nil) // closed stays closed
	if fired != 0 {
		t.Fatalf("hook fired %d times on steady closed state", fired)
	}
	b.Record(errors.New("boom")) // trips
	b.Record(errors.New("boom")) // already open: no edge
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
}

// TestRetryOnAttemptCountsEveryTry: the hook sees each attempt index in
// order, before the attempt runs, on both failing and succeeding runs.
func TestRetryOnAttemptCountsEveryTry(t *testing.T) {
	var seen []int
	p := Policy{MaxAttempts: 3, Sleep: noSleep,
		OnAttempt: func(attempt int) { seen = append(seen, attempt) }}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Fatalf("attempt indices %v, want [0 1 2]", seen)
	}
	// A first-try success fires the hook exactly once with index 0.
	seen = nil
	if err := p.Do(context.Background(), func(ctx context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != 0 {
		t.Fatalf("attempt indices %v, want [0]", seen)
	}
}

// TestRetryOnAttemptOnExhaustion: every attempt of an always-failing run is
// observed even though Do returns an error.
func TestRetryOnAttemptOnExhaustion(t *testing.T) {
	fired := 0
	p := Policy{MaxAttempts: 4, Sleep: noSleep,
		OnAttempt: func(int) { fired++ }}
	err := p.Do(context.Background(), func(ctx context.Context) error {
		return errors.New("always")
	})
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if fired != 4 {
		t.Fatalf("hook fired %d times, want 4", fired)
	}
}
