package resilience

import (
	"sync"
	"time"
)

// Data-state values for SourceHealth.State. "unknown" is the pre-first-
// collect state; fresh/stale/missing mirror the per-source provenance the
// degraded-mode collector stamps on each merged snapshot.
const (
	DataUnknown = "unknown"
	DataFresh   = "fresh"
	DataStale   = "stale"
	DataMissing = "missing"
)

// SourceHealth is one source's row in a health report.
type SourceHealth struct {
	Name     string `json:"name"`
	Required bool   `json:"required"`
	// State is the data state of the source's contribution to the most
	// recent merged snapshot: unknown, fresh, stale or missing.
	State string `json:"state"`
	// Breaker is the source's breaker state (closed/open/half-open), or ""
	// when the source has no breaker.
	Breaker             string    `json:"breaker,omitempty"`
	LastSuccess         time.Time `json:"last_success,omitempty"`
	LastError           string    `json:"last_error,omitempty"`
	ConsecutiveFailures int       `json:"consecutive_failures"`
}

// Registry tracks per-source health for the serving layer's /healthz.
// Sources report in registration order so snapshots are deterministic.
type Registry struct {
	mu    sync.Mutex
	rows  map[string]*SourceHealth
	order []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{rows: make(map[string]*SourceHealth)}
}

// Register adds a source row (idempotent; re-registering updates Required).
func (r *Registry) Register(name string, required bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if row, ok := r.rows[name]; ok {
		row.Required = required
		return
	}
	r.rows[name] = &SourceHealth{Name: name, Required: required, State: DataUnknown}
	r.order = append(r.order, name)
}

// Report records one collect outcome for a source: its data state for the
// merged snapshot, the breaker state ("" when none), and the error if the
// underlying collect failed (a stale fallback reports both a state of
// DataStale and the error that forced it).
func (r *Registry) Report(name, state, breaker string, at time.Time, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	row, ok := r.rows[name]
	if !ok {
		row = &SourceHealth{Name: name}
		r.rows[name] = row
		r.order = append(r.order, name)
	}
	row.State = state
	row.Breaker = breaker
	if err == nil {
		row.LastSuccess = at
		row.LastError = ""
		row.ConsecutiveFailures = 0
	} else {
		row.LastError = err.Error()
		row.ConsecutiveFailures++
	}
}

// Snapshot returns the rows in registration order.
func (r *Registry) Snapshot() []SourceHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SourceHealth, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, *r.rows[name])
	}
	return out
}

// Healthy reports whether every required source is currently serving data
// (fresh or within its staleness budget). A registry with no rows is
// healthy; a required source that has never collected is not.
func (r *Registry) Healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		row := r.rows[name]
		if row.Required && row.State != DataFresh && row.State != DataStale {
			return false
		}
	}
	return true
}
