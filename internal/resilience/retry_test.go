package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// noSleep makes Do instantaneous while still exercising the schedule path.
func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// TestScheduleDeterminism: equal policies produce bit-identical jittered
// schedules — the property verify.sh's determinism gate leans on.
func TestScheduleDeterminism(t *testing.T) {
	p := Policy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second,
		Multiplier: 2, Jitter: 0.5, Seed: 42}
	a := p.Schedule()
	b := p.Schedule()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("schedule lengths = %d, %d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must move at least one delay.
	p2 := p
	p2.Seed = 43
	c := p2.Schedule()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical jittered schedules")
	}
}

func TestScheduleBoundsAndGrowth(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2}
	s := p.Schedule()
	want := []time.Duration{10, 20, 40, 80, 80, 80, 80}
	for i, w := range want {
		if s[i] != w*time.Millisecond {
			t.Fatalf("schedule[%d] = %v, want %v", i, s[i], w*time.Millisecond)
		}
	}
	// Jitter keeps delays within ±Jitter/2 of the deterministic value.
	p.Jitter = 0.4
	p.Seed = 7
	for i, d := range p.Schedule() {
		base := float64(want[i] * time.Millisecond)
		lo, hi := base*0.8, base*1.2
		if float64(d) < lo || float64(d) > hi {
			t.Fatalf("jittered schedule[%d] = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
	if got := (Policy{MaxAttempts: 1}).Schedule(); got != nil {
		t.Fatalf("single-attempt schedule = %v, want nil", got)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{MaxAttempts: 4, Sleep: noSleep}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, Sleep: noSleep}
	calls := 0
	base := errors.New("still down")
	err := p.Do(context.Background(), func(ctx context.Context) error { calls++; return base })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want wrapped %v", err, base)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: noSleep}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return Permanent(fmt.Errorf("bad credentials"))
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (permanent error must not retry)", calls)
	}
	if !IsPermanent(err) {
		t.Fatalf("err = %v, want permanent", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestDoHonoursContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour} // real sleep would hang
	calls := 0
	err := p.Do(ctx, func(ctx context.Context) error {
		calls++
		cancel() // cancel during the first attempt; the backoff sleep must abort
		return errors.New("transient")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, AttemptTimeout: 5 * time.Millisecond, Sleep: noSleep}
	var deadlines int
	err := p.Do(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done() // a hung attempt is released by the per-attempt deadline
		return ctx.Err()
	})
	if deadlines != 2 {
		t.Fatalf("attempts with deadline = %d, want 2", deadlines)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
