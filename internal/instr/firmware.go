package instr

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Firmware instruction-table codec. The paper recovers the gateway's
// instruction set by reverse-engineering its firmware: "all instructions
// are stored at the address 0x102F80 specified in the firmware (a function
// + an instruction)" (§IV-A). This file reproduces that artefact: a
// synthetic firmware image with the instruction table at that address, and
// the extractor that walks it — so the builtin registry is literally
// parsed out of a firmware blob, as in the paper.

// FirmwareTableOffset is the file offset of the instruction table.
const FirmwareTableOffset = 0x102F80

// firmwareMagic marks the start of the instruction table.
var firmwareMagic = []byte{0x49, 0x4F, 0x54, 0x53} // "IOTS"

// Firmware table entry layout (little endian):
//
//	u32 function pointer (vendor code address; opaque)
//	u8  category
//	u8  kind
//	u16 opcode length
//	...  opcode bytes
//
// The table ends with a zero function pointer.
const entryHeaderSize = 8

// BuildFirmware synthesises a firmware image containing the instruction
// table at FirmwareTableOffset. Bytes before the table are deterministic
// filler standing in for vendor code.
func BuildFirmware(specs []Spec) ([]byte, error) {
	var table bytes.Buffer
	table.Write(firmwareMagic)
	fn := uint32(0x0800_1000) // synthetic vendor code addresses
	for _, s := range specs {
		if s.Op == "" {
			return nil, fmt.Errorf("instr: firmware spec with empty opcode")
		}
		if len(s.Op) > 0xFFFF {
			return nil, fmt.Errorf("instr: opcode %q too long", s.Op[:16])
		}
		var hdr [entryHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], fn)
		hdr[4] = byte(s.Category)
		hdr[5] = byte(s.Kind)
		binary.LittleEndian.PutUint16(hdr[6:8], uint16(len(s.Op)))
		table.Write(hdr[:])
		table.WriteString(s.Op)
		fn += 0x40
	}
	var term [entryHeaderSize]byte // zero function pointer terminates
	table.Write(term[:])

	img := make([]byte, FirmwareTableOffset+table.Len())
	// Deterministic filler so the image looks like code, not zeros.
	for i := 0; i < FirmwareTableOffset; i++ {
		img[i] = byte((i*31 + 7) & 0xFF)
	}
	copy(img[FirmwareTableOffset:], table.Bytes())
	return img, nil
}

// ExtractFirmware walks the instruction table at FirmwareTableOffset and
// returns the specs it holds — the paper's reverse-analysis step.
// Descriptions are not stored in firmware and come back empty.
func ExtractFirmware(img []byte) ([]Spec, error) {
	if len(img) < FirmwareTableOffset+len(firmwareMagic) {
		return nil, fmt.Errorf("instr: firmware image too small: %d bytes", len(img))
	}
	p := FirmwareTableOffset
	if !bytes.Equal(img[p:p+len(firmwareMagic)], firmwareMagic) {
		return nil, fmt.Errorf("instr: no instruction table magic at %#x", FirmwareTableOffset)
	}
	p += len(firmwareMagic)
	var out []Spec
	for {
		if p+entryHeaderSize > len(img) {
			return nil, fmt.Errorf("instr: truncated table entry at %#x", p)
		}
		fn := binary.LittleEndian.Uint32(img[p : p+4])
		if fn == 0 {
			return out, nil // terminator
		}
		cat := Category(img[p+4])
		kind := Kind(img[p+5])
		opLen := int(binary.LittleEndian.Uint16(img[p+6 : p+8]))
		p += entryHeaderSize
		if p+opLen > len(img) {
			return nil, fmt.Errorf("instr: truncated opcode at %#x", p)
		}
		op := string(img[p : p+opLen])
		p += opLen
		if !cat.Valid() {
			return nil, fmt.Errorf("instr: entry %q has invalid category %d", op, cat)
		}
		if kind != KindControl && kind != KindStatus {
			return nil, fmt.Errorf("instr: entry %q has invalid kind %d", op, kind)
		}
		out = append(out, Spec{Op: op, Category: cat, Kind: kind})
	}
}

// RegistryFromFirmware extracts the table and builds a registry from it.
func RegistryFromFirmware(img []byte) (*Registry, error) {
	specs, err := ExtractFirmware(img)
	if err != nil {
		return nil, err
	}
	return NewRegistry(specs)
}
