package instr

import (
	"bytes"
	"testing"
)

func TestFirmwareRoundTrip(t *testing.T) {
	img, err := BuildFirmware(BuiltinSpecs())
	if err != nil {
		t.Fatalf("BuildFirmware: %v", err)
	}
	if len(img) <= FirmwareTableOffset {
		t.Fatalf("image length %d", len(img))
	}
	// The table sits exactly at the paper's address.
	if !bytes.Equal(img[FirmwareTableOffset:FirmwareTableOffset+4], firmwareMagic) {
		t.Fatal("table magic not at 0x102F80")
	}
	specs, err := ExtractFirmware(img)
	if err != nil {
		t.Fatalf("ExtractFirmware: %v", err)
	}
	want := BuiltinSpecs()
	if len(specs) != len(want) {
		t.Fatalf("extracted %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i].Op != want[i].Op || specs[i].Category != want[i].Category || specs[i].Kind != want[i].Kind {
			t.Errorf("entry %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	// The extracted table builds a working registry equivalent to the
	// builtin one.
	reg, err := RegistryFromFirmware(img)
	if err != nil {
		t.Fatalf("RegistryFromFirmware: %v", err)
	}
	if reg.Len() != BuiltinRegistry().Len() {
		t.Errorf("registry len %d, want %d", reg.Len(), BuiltinRegistry().Len())
	}
	if _, ok := reg.Lookup("window.open"); !ok {
		t.Error("window.open missing from extracted registry")
	}
}

func TestFirmwareBuildValidation(t *testing.T) {
	if _, err := BuildFirmware([]Spec{{Op: ""}}); err == nil {
		t.Error("want empty-opcode error")
	}
}

func TestExtractFirmwareErrors(t *testing.T) {
	t.Run("too small", func(t *testing.T) {
		if _, err := ExtractFirmware(make([]byte, 128)); err == nil {
			t.Error("want size error")
		}
	})
	t.Run("no magic", func(t *testing.T) {
		img := make([]byte, FirmwareTableOffset+64)
		if _, err := ExtractFirmware(img); err == nil {
			t.Error("want magic error")
		}
	})
	img, err := BuildFirmware(BuiltinSpecs()[:3])
	if err != nil {
		t.Fatal(err)
	}
	t.Run("truncated entry", func(t *testing.T) {
		if _, err := ExtractFirmware(img[:FirmwareTableOffset+6]); err == nil {
			t.Error("want truncation error")
		}
	})
	t.Run("truncated opcode", func(t *testing.T) {
		// Cut inside the first opcode.
		if _, err := ExtractFirmware(img[:FirmwareTableOffset+4+entryHeaderSize+2]); err == nil {
			t.Error("want opcode truncation error")
		}
	})
	t.Run("corrupt category", func(t *testing.T) {
		evil := append([]byte(nil), img...)
		evil[FirmwareTableOffset+4+4] = 0xFF // category byte of entry 0
		if _, err := ExtractFirmware(evil); err == nil {
			t.Error("want category error")
		}
	})
	t.Run("corrupt kind", func(t *testing.T) {
		evil := append([]byte(nil), img...)
		evil[FirmwareTableOffset+4+5] = 0xFF
		if _, err := ExtractFirmware(evil); err == nil {
			t.Error("want kind error")
		}
	})
	t.Run("missing terminator", func(t *testing.T) {
		// Chop the terminator entry off entirely.
		if _, err := ExtractFirmware(img[:len(img)-entryHeaderSize]); err == nil {
			t.Error("want truncated-table error")
		}
	})
}
