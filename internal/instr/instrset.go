package instr

// BuiltinSpecs returns the reproduction of the instruction set extracted
// from the Xiaomi gateway firmware (one function + one instruction per table
// entry). Opcodes follow the vendor's `<domain>.<verb>` wire convention.
// The set spans all nine Table I categories with both control and status
// instructions per category.
func BuiltinSpecs() []Spec {
	return []Spec{
		// 1. Alarms (smoke / fire, flood, combustible gas).
		{Op: "alarm.arm", Category: CatAlarm, Kind: KindControl, Description: "arm the alarm hub"},
		{Op: "alarm.disarm", Category: CatAlarm, Kind: KindControl, Description: "disarm the alarm hub"},
		{Op: "alarm.siren_on", Category: CatAlarm, Kind: KindControl, Description: "sound the siren"},
		{Op: "alarm.siren_off", Category: CatAlarm, Kind: KindControl, Description: "silence the siren"},
		{Op: "alarm.test", Category: CatAlarm, Kind: KindControl, Description: "run a self-test"},
		{Op: "alarm.get_state", Category: CatAlarm, Kind: KindStatus, Description: "read arm state"},
		{Op: "alarm.get_smoke", Category: CatAlarm, Kind: KindStatus, Description: "read smoke detector"},
		{Op: "alarm.get_gas", Category: CatAlarm, Kind: KindStatus, Description: "read gas detector"},
		{Op: "alarm.get_water", Category: CatAlarm, Kind: KindStatus, Description: "read flood sensor"},

		// 2. Kitchen appliances.
		{Op: "cooker.start", Category: CatKitchen, Kind: KindControl, Description: "start the rice cooker"},
		{Op: "cooker.stop", Category: CatKitchen, Kind: KindControl, Description: "stop the rice cooker"},
		{Op: "cooker.set_mode", Category: CatKitchen, Kind: KindControl, Description: "select cooking program"},
		{Op: "oven.preheat", Category: CatKitchen, Kind: KindControl, Description: "preheat the oven"},
		{Op: "oven.off", Category: CatKitchen, Kind: KindControl, Description: "switch the oven off"},
		{Op: "dishwasher.start", Category: CatKitchen, Kind: KindControl, Description: "start a wash cycle"},
		{Op: "dishwasher.stop", Category: CatKitchen, Kind: KindControl, Description: "abort the wash cycle"},
		{Op: "fridge.set_temp", Category: CatKitchen, Kind: KindControl, Description: "set fridge temperature"},
		{Op: "cooker.get_state", Category: CatKitchen, Kind: KindStatus, Description: "read cooker state"},
		{Op: "oven.get_temp", Category: CatKitchen, Kind: KindStatus, Description: "read oven temperature"},
		{Op: "fridge.get_temp", Category: CatKitchen, Kind: KindStatus, Description: "read fridge temperature"},

		// 3. Entertainment (TV, stereo).
		{Op: "tv.on", Category: CatEntertainment, Kind: KindControl, Description: "switch the TV on"},
		{Op: "tv.off", Category: CatEntertainment, Kind: KindControl, Description: "switch the TV off"},
		{Op: "tv.set_channel", Category: CatEntertainment, Kind: KindControl, Description: "change channel"},
		{Op: "tv.set_volume", Category: CatEntertainment, Kind: KindControl, Description: "set TV volume"},
		{Op: "stereo.play", Category: CatEntertainment, Kind: KindControl, Description: "start playback"},
		{Op: "stereo.pause", Category: CatEntertainment, Kind: KindControl, Description: "pause playback"},
		{Op: "stereo.set_volume", Category: CatEntertainment, Kind: KindControl, Description: "set stereo volume"},
		{Op: "tv.get_state", Category: CatEntertainment, Kind: KindStatus, Description: "read TV power state"},
		{Op: "stereo.get_state", Category: CatEntertainment, Kind: KindStatus, Description: "read playback state"},

		// 4. Air conditioner / thermostat.
		{Op: "aircon.on", Category: CatAirConditioning, Kind: KindControl, Description: "switch the air conditioner on"},
		{Op: "aircon.off", Category: CatAirConditioning, Kind: KindControl, Description: "switch the air conditioner off"},
		{Op: "aircon.set_cool", Category: CatAirConditioning, Kind: KindControl, Description: "select cooling mode"},
		{Op: "aircon.set_heat", Category: CatAirConditioning, Kind: KindControl, Description: "select heating mode"},
		{Op: "aircon.set_temp", Category: CatAirConditioning, Kind: KindControl, Description: "set target temperature"},
		{Op: "thermostat.set_target", Category: CatAirConditioning, Kind: KindControl, Description: "set thermostat target"},
		{Op: "aircon.get_state", Category: CatAirConditioning, Kind: KindStatus, Description: "read AC state"},
		{Op: "thermostat.get_temp", Category: CatAirConditioning, Kind: KindStatus, Description: "read thermostat temperature"},

		// 5. Curtains, blinds.
		{Op: "curtain.open", Category: CatCurtain, Kind: KindControl, Description: "open the curtains"},
		{Op: "curtain.close", Category: CatCurtain, Kind: KindControl, Description: "close the curtains"},
		{Op: "curtain.set_position", Category: CatCurtain, Kind: KindControl, Description: "move curtains to a position"},
		{Op: "blind.tilt", Category: CatCurtain, Kind: KindControl, Description: "tilt the blinds"},
		{Op: "curtain.get_position", Category: CatCurtain, Kind: KindStatus, Description: "read curtain position"},

		// 6. Lamps.
		{Op: "light.on", Category: CatLighting, Kind: KindControl, Description: "switch the light on"},
		{Op: "light.off", Category: CatLighting, Kind: KindControl, Description: "switch the light off"},
		{Op: "light.set_brightness", Category: CatLighting, Kind: KindControl, Description: "set brightness"},
		{Op: "light.set_color", Category: CatLighting, Kind: KindControl, Description: "set colour"},
		{Op: "light.toggle", Category: CatLighting, Kind: KindControl, Description: "toggle the light"},
		{Op: "light.get_state", Category: CatLighting, Kind: KindStatus, Description: "read light state"},

		// 7. Smart door locks, doors and windows.
		{Op: "window.open", Category: CatWindowDoorLock, Kind: KindControl, Description: "open the window actuator"},
		{Op: "window.close", Category: CatWindowDoorLock, Kind: KindControl, Description: "close the window actuator"},
		{Op: "door.open", Category: CatWindowDoorLock, Kind: KindControl, Description: "open the door actuator"},
		{Op: "door.close", Category: CatWindowDoorLock, Kind: KindControl, Description: "close the door actuator"},
		{Op: "lock.lock", Category: CatWindowDoorLock, Kind: KindControl, Description: "engage the smart lock"},
		{Op: "lock.unlock", Category: CatWindowDoorLock, Kind: KindControl, Description: "release the smart lock"},
		{Op: "window.get_state", Category: CatWindowDoorLock, Kind: KindStatus, Description: "read window contact"},
		{Op: "door.get_state", Category: CatWindowDoorLock, Kind: KindStatus, Description: "read door contact"},
		{Op: "lock.get_state", Category: CatWindowDoorLock, Kind: KindStatus, Description: "read lock state"},

		// 8. Vacuum cleaner, lawn mower.
		{Op: "vacuum.start", Category: CatVacuum, Kind: KindControl, Description: "start cleaning"},
		{Op: "vacuum.stop", Category: CatVacuum, Kind: KindControl, Description: "stop cleaning"},
		{Op: "vacuum.dock", Category: CatVacuum, Kind: KindControl, Description: "return to dock"},
		{Op: "mower.start", Category: CatVacuum, Kind: KindControl, Description: "start mowing"},
		{Op: "mower.stop", Category: CatVacuum, Kind: KindControl, Description: "stop mowing"},
		{Op: "vacuum.get_state", Category: CatVacuum, Kind: KindStatus, Description: "read vacuum state"},

		// 9. Security camera.
		{Op: "camera.on", Category: CatCamera, Kind: KindControl, Description: "enable monitoring"},
		{Op: "camera.off", Category: CatCamera, Kind: KindControl, Description: "disable monitoring"},
		{Op: "camera.rotate", Category: CatCamera, Kind: KindControl, Description: "rotate the camera head"},
		{Op: "camera.record", Category: CatCamera, Kind: KindControl, Description: "start recording"},
		{Op: "camera.alert_user", Category: CatCamera, Kind: KindControl, Description: "push a warning to the user"},
		{Op: "camera.get_state", Category: CatCamera, Kind: KindStatus, Description: "read camera state"},
		{Op: "camera.get_stream", Category: CatCamera, Kind: KindStatus, Description: "fetch the stream handle"},
	}
}

// BuiltinRegistry returns a registry over BuiltinSpecs. The builtin set is
// internally consistent, so construction cannot fail.
func BuiltinRegistry() *Registry {
	r, err := NewRegistry(BuiltinSpecs())
	if err != nil {
		panic("instr: builtin instruction set invalid: " + err.Error())
	}
	return r
}
