package instr

import (
	"strings"
	"testing"
)

func TestCategoriesCompleteOrdered(t *testing.T) {
	cats := Categories()
	if len(cats) != 9 {
		t.Fatalf("len = %d, want 9 (Table I)", len(cats))
	}
	for i, c := range cats {
		if int(c) != i+1 {
			t.Errorf("Categories()[%d] = %v", i, c)
		}
		if !c.Valid() {
			t.Errorf("category %v invalid", c)
		}
		if strings.Contains(c.String(), "(") {
			t.Errorf("category %v has no name", c)
		}
		if c.Title() == "" {
			t.Errorf("category %v has no title", c)
		}
	}
	if Category(0).Valid() || Category(10).Valid() {
		t.Error("out-of-range categories must be invalid")
	}
	if got := Category(42).String(); got != "category(42)" {
		t.Errorf("Category(42) = %q", got)
	}
	if got := Category(42).Title(); got != "category(42)" {
		t.Errorf("Category(42).Title() = %q", got)
	}
}

func TestParseCategory(t *testing.T) {
	for _, c := range Categories() {
		got, err := ParseCategory(c.String())
		if err != nil {
			t.Errorf("ParseCategory(%q): %v", c.String(), err)
			continue
		}
		if got != c {
			t.Errorf("ParseCategory(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if _, err := ParseCategory("toaster"); err == nil {
		t.Error("want error for unknown category")
	}
}

func TestKindAndThreatStrings(t *testing.T) {
	if KindControl.String() != "control" || KindStatus.String() != "status" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind name wrong")
	}
	levels := map[ThreatLevel]string{
		ThreatNone: "none", ThreatLow: "low", ThreatMedium: "medium", ThreatHigh: "high",
	}
	for l, want := range levels {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
	if ThreatLevel(99).String() != "threat(99)" {
		t.Error("unknown threat name wrong")
	}
	origins := map[Origin]string{OriginUser: "user", OriginAutomation: "automation", OriginUnknown: "unknown"}
	for o, want := range origins {
		if o.String() != want {
			t.Errorf("origin %d = %q, want %q", o, o.String(), want)
		}
	}
	if Origin(99).String() != "origin(99)" {
		t.Error("unknown origin name wrong")
	}
}

func TestNewRegistryValidation(t *testing.T) {
	tests := []struct {
		name  string
		specs []Spec
	}{
		{name: "empty opcode", specs: []Spec{{Op: "", Category: CatAlarm, Kind: KindControl}}},
		{name: "invalid category", specs: []Spec{{Op: "x.y", Category: 0, Kind: KindControl}}},
		{name: "invalid kind", specs: []Spec{{Op: "x.y", Category: CatAlarm, Kind: 0}}},
		{name: "duplicate opcode", specs: []Spec{
			{Op: "x.y", Category: CatAlarm, Kind: KindControl},
			{Op: "x.y", Category: CatAlarm, Kind: KindStatus},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewRegistry(tt.specs); err == nil {
				t.Error("want construction error")
			}
		})
	}
}

func TestBuiltinRegistry(t *testing.T) {
	r := BuiltinRegistry()
	if r.Len() < 60 {
		t.Fatalf("builtin set too small: %d", r.Len())
	}
	// Every category has at least one control and one status instruction.
	for _, c := range Categories() {
		specs := r.ByCategory(c)
		var control, status bool
		for _, s := range specs {
			switch s.Kind {
			case KindControl:
				control = true
			case KindStatus:
				status = true
			}
			if s.Description == "" {
				t.Errorf("spec %q has no description", s.Op)
			}
		}
		if !control || !status {
			t.Errorf("category %v missing control(%v)/status(%v) instructions", c, control, status)
		}
	}
	// Specs are sorted and unique.
	specs := r.Specs()
	if len(specs) != r.Len() {
		t.Fatalf("Specs len %d != registry len %d", len(specs), r.Len())
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Op >= specs[i].Op {
			t.Fatalf("specs not strictly sorted at %d: %q >= %q", i, specs[i-1].Op, specs[i].Op)
		}
	}
}

func TestRegistryBuild(t *testing.T) {
	r := BuiltinRegistry()
	args := map[string]any{"position": 50}
	in, err := r.Build("curtain.set_position", "curtain-1", OriginUser, args)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if in.Category != CatCurtain || in.Kind != KindControl {
		t.Errorf("built instruction %+v", in)
	}
	// Args are copied at the boundary.
	args["position"] = 99
	if in.Args["position"] != 50 {
		t.Error("Build must copy args")
	}
	if _, err := r.Build("nuke.launch", "d", OriginUser, nil); err == nil {
		t.Error("want error for unknown opcode")
	}
	// No args -> nil map.
	in2, err := r.Build("light.on", "light-1", OriginAutomation, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if in2.Args != nil {
		t.Error("empty args should stay nil")
	}
}

func TestRegistryLookup(t *testing.T) {
	r := BuiltinRegistry()
	s, ok := r.Lookup("window.open")
	if !ok {
		t.Fatal("window.open missing from builtin set")
	}
	if s.Category != CatWindowDoorLock || s.Kind != KindControl {
		t.Errorf("window.open spec = %+v", s)
	}
	if _, ok := r.Lookup("none.such"); ok {
		t.Error("unexpected lookup hit")
	}
}
