// Package instr models the smart-home instruction set the paper extracts
// from Xiaomi gateway firmware (§IV-A: "all instructions are stored at the
// address 0x102F80 ... a function + an instruction"), the nine device
// categories of Table I, and the high/medium/low threat taxonomy from the
// China Mobile smart-home grading standard.
package instr

import (
	"fmt"
	"sort"
)

// Category is one of the nine smart-home device categories of Table I.
type Category int

// The nine device categories, in Table I order.
const (
	CatAlarm Category = iota + 1
	CatKitchen
	CatEntertainment
	CatAirConditioning
	CatCurtain
	CatLighting
	CatWindowDoorLock
	CatVacuum
	CatCamera
)

var categoryNames = map[Category]string{
	CatAlarm:           "alarm",
	CatKitchen:         "kitchen",
	CatEntertainment:   "entertainment",
	CatAirConditioning: "air_conditioning",
	CatCurtain:         "curtain",
	CatLighting:        "lighting",
	CatWindowDoorLock:  "window_door_lock",
	CatVacuum:          "vacuum",
	CatCamera:          "camera",
}

var categoryTitles = map[Category]string{
	CatAlarm:           "Alarm equipment",
	CatKitchen:         "Kitchen equipment",
	CatEntertainment:   "TV audio equipment",
	CatAirConditioning: "Air conditioning equipment",
	CatCurtain:         "Curtain blinds equipment",
	CatLighting:        "Lighting equipment",
	CatWindowDoorLock:  "Window equipment",
	CatVacuum:          "Sweeping robot equipment",
	CatCamera:          "Security camera equipment",
}

// Categories returns all nine categories in Table I order.
func Categories() []Category {
	return []Category{
		CatAlarm, CatKitchen, CatEntertainment, CatAirConditioning,
		CatCurtain, CatLighting, CatWindowDoorLock, CatVacuum, CatCamera,
	}
}

// String returns the canonical lower-snake name of the category.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Title returns the display name used in the paper's tables.
func (c Category) Title() string {
	if s, ok := categoryTitles[c]; ok {
		return s
	}
	return c.String()
}

// Valid reports whether c is one of the nine categories.
func (c Category) Valid() bool {
	_, ok := categoryNames[c]
	return ok
}

// ParseCategory resolves a canonical category name.
func ParseCategory(s string) (Category, error) {
	for c, name := range categoryNames {
		if name == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("instr: unknown category %q", s)
}

// Kind splits the instruction set the way the paper's questionnaire does:
// control instructions mutate device state, status instructions only read it.
type Kind int

// Instruction kinds.
const (
	KindControl Kind = iota + 1
	KindStatus
)

// String names the instruction kind.
func (k Kind) String() string {
	switch k {
	case KindControl:
		return "control"
	case KindStatus:
		return "status"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ThreatLevel is the questionnaire's threat taxonomy.
type ThreatLevel int

// Threat levels, per the China Mobile grading standard the paper cites.
const (
	ThreatNone ThreatLevel = iota + 1
	ThreatLow
	ThreatMedium
	ThreatHigh
)

// String names the threat level.
func (t ThreatLevel) String() string {
	switch t {
	case ThreatNone:
		return "none"
	case ThreatLow:
		return "low"
	case ThreatMedium:
		return "medium"
	case ThreatHigh:
		return "high"
	default:
		return fmt.Sprintf("threat(%d)", int(t))
	}
}

// Spec describes one entry of the extracted instruction set: the opcode
// (method name on the wire), its category, kind, and a human description.
type Spec struct {
	Op          string   `json:"op"`
	Category    Category `json:"category"`
	Kind        Kind     `json:"kind"`
	Description string   `json:"description"`
}

// Instruction is a concrete command addressed to one device.
type Instruction struct {
	Op       string         `json:"op"`
	DeviceID string         `json:"device_id"`
	Category Category       `json:"category"`
	Kind     Kind           `json:"kind"`
	Args     map[string]any `json:"args,omitempty"`
	Origin   Origin         `json:"origin"`
}

// Origin records which path issued the instruction.
type Origin int

// Instruction origins.
const (
	OriginUser Origin = iota + 1 // app / voice, direct user action
	OriginAutomation
	OriginUnknown
)

// String names the origin.
func (o Origin) String() string {
	switch o {
	case OriginUser:
		return "user"
	case OriginAutomation:
		return "automation"
	case OriginUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("origin(%d)", int(o))
	}
}

// Registry holds the instruction set, indexed by opcode.
type Registry struct {
	specs map[string]Spec
}

// NewRegistry builds a registry from a set of specs. Duplicate opcodes are
// an error — the firmware table has exactly one function per instruction.
func NewRegistry(specs []Spec) (*Registry, error) {
	r := &Registry{specs: make(map[string]Spec, len(specs))}
	for _, s := range specs {
		if s.Op == "" {
			return nil, fmt.Errorf("instr: spec with empty opcode")
		}
		if !s.Category.Valid() {
			return nil, fmt.Errorf("instr: spec %q has invalid category", s.Op)
		}
		if s.Kind != KindControl && s.Kind != KindStatus {
			return nil, fmt.Errorf("instr: spec %q has invalid kind", s.Op)
		}
		if _, dup := r.specs[s.Op]; dup {
			return nil, fmt.Errorf("instr: duplicate opcode %q", s.Op)
		}
		r.specs[s.Op] = s
	}
	return r, nil
}

// Lookup resolves an opcode.
func (r *Registry) Lookup(op string) (Spec, bool) {
	s, ok := r.specs[op]
	return s, ok
}

// Len returns the number of registered instructions.
func (r *Registry) Len() int { return len(r.specs) }

// Specs returns all specs sorted by opcode.
func (r *Registry) Specs() []Spec {
	out := make([]Spec, 0, len(r.specs))
	for _, s := range r.specs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// ByCategory returns the specs of one category sorted by opcode.
func (r *Registry) ByCategory(c Category) []Spec {
	var out []Spec
	for _, s := range r.specs {
		if s.Category == c {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// Build constructs a concrete instruction for a device after validating the
// opcode against the registry.
func (r *Registry) Build(op, deviceID string, origin Origin, args map[string]any) (Instruction, error) {
	spec, ok := r.specs[op]
	if !ok {
		return Instruction{}, fmt.Errorf("instr: unknown opcode %q", op)
	}
	var copied map[string]any
	if len(args) > 0 {
		copied = make(map[string]any, len(args))
		for k, v := range args {
			copied[k] = v
		}
	}
	return Instruction{
		Op:       op,
		DeviceID: deviceID,
		Category: spec.Category,
		Kind:     spec.Kind,
		Args:     copied,
		Origin:   origin,
	}, nil
}
