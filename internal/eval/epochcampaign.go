package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/epoch"
	"iotsid/internal/home"
)

// epochMode runs the campaign over the event-driven path: each round owns
// an epoch store clocked by its home's simulated time, and every staged
// scene is pushed into the store before the decision fires — the
// experiment's stand-in for the vendor event stream. The push budget is
// generous (an hour of sim time) because scene staging never advances the
// clock; staleness behaviour has its own tests, this mode measures
// decision equivalence.
func epochMode() campaignMode {
	return campaignMode{
		setup: func(h *home.Home) (core.Collector, func() error, error) {
			now := h.Env().Now
			store, err := epoch.NewStore(epoch.Config{Now: now},
				epoch.SourceConfig{Name: "sim", Required: true, FreshFor: time.Hour})
			if err != nil {
				return nil, nil, err
			}
			collector, err := core.NewEpochCollector(core.EpochCollectorConfig{Now: now}, store)
			if err != nil {
				return nil, nil, err
			}
			sync := func() error { return store.Push("sim", h.Env().Snapshot()) }
			return collector, sync, nil
		},
	}
}

// CampaignComparison is the head-to-head outcome of the same seeded
// campaign run through the polled and the event-driven collection paths.
type CampaignComparison struct {
	Polled CampaignResult `json:"polled"`
	Epoch  CampaignResult `json:"epoch"`
	// Identical reports whether every decision — not just the tallies —
	// matched bit-for-bit between the two paths.
	Identical bool `json:"identical"`
	// Divergences counts decision slots where the paths disagreed.
	Divergences int `json:"divergences"`
}

// CampaignCompare runs the same seeded campaign through both collection
// paths and compares the full decision streams element-wise. Both runs use
// the suite's seed, so the scenes, instruction order and device state are
// identical; any divergence is the collection path's doing.
func (s *Suite) CampaignCompare(ctx context.Context, rounds int) (CampaignComparison, error) {
	polled, err := s.runCampaign(ctx, rounds, polledMode())
	if err != nil {
		return CampaignComparison{}, fmt.Errorf("eval: polled campaign: %w", err)
	}
	epochOut, err := s.runCampaign(ctx, rounds, epochMode())
	if err != nil {
		return CampaignComparison{}, fmt.Errorf("eval: epoch campaign: %w", err)
	}
	cmp := CampaignComparison{
		Polled: tallyCampaign(polled),
		Epoch:  tallyCampaign(epochOut),
	}
	for r := range polled {
		for i := range polled[r].attackDecisions {
			if polled[r].attackDecisions[i] != epochOut[r].attackDecisions[i] {
				cmp.Divergences++
			}
			if polled[r].legitDecisions[i] != epochOut[r].legitDecisions[i] {
				cmp.Divergences++
			}
		}
	}
	cmp.Identical = cmp.Divergences == 0
	return cmp, nil
}

// RenderCampaignCompare formats the comparison.
func (s *Suite) RenderCampaignCompare(ctx context.Context, rounds int) (string, error) {
	cmp, err := s.CampaignCompare(ctx, rounds)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Collection-path comparison — %d rounds, polled vs. event-driven\n", rounds)
	fmt.Fprintf(&b, "  polled: interception %.1f%%, false blocks %.1f%%\n",
		100*cmp.Polled.BlockRate(), 100*cmp.Polled.FalseBlockRate())
	fmt.Fprintf(&b, "  epoch:  interception %.1f%%, false blocks %.1f%%\n",
		100*cmp.Epoch.BlockRate(), 100*cmp.Epoch.FalseBlockRate())
	types := make([]string, 0, len(cmp.Polled.PerType))
	for t := range cmp.Polled.PerType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	fmt.Fprintf(&b, "  per scenario (blocked; false blocks — polled | epoch):\n")
	for _, t := range types {
		p, e := cmp.Polled.PerType[AttackType(t)], cmp.Epoch.PerType[AttackType(t)]
		fmt.Fprintf(&b, "    %-24s %3d/%3d; %d/%d | %3d/%3d; %d/%d\n", t,
			p.Blocked, p.Attempts, p.LegitBlocked, p.LegitAttempts,
			e.Blocked, e.Attempts, e.LegitBlocked, e.LegitAttempts)
	}
	if cmp.Identical {
		fmt.Fprintf(&b, "  decision streams identical (every decision bit-for-bit equal)\n")
	} else {
		fmt.Fprintf(&b, "  DIVERGED: %d decision slots differ\n", cmp.Divergences)
	}
	return b.String(), nil
}
