package eval

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestEpochCampaignMatchesPolled is the tentpole's equivalence gate: the
// same seeded campaign produces bit-identical decisions whether the
// framework polls the environment or reads the epoch store.
func TestEpochCampaignMatchesPolled(t *testing.T) {
	s := suiteForTest(t)
	cmp, err := s.CampaignCompare(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Identical || cmp.Divergences != 0 {
		t.Fatalf("decision streams diverge: identical=%v divergences=%d\npolled: %+v\nepoch:  %+v",
			cmp.Identical, cmp.Divergences, cmp.Polled, cmp.Epoch)
	}
	if !reflect.DeepEqual(cmp.Polled, cmp.Epoch) {
		t.Fatalf("tallies diverge:\npolled: %+v\nepoch:  %+v", cmp.Polled, cmp.Epoch)
	}
	// The campaign must actually have decided things.
	if cmp.Epoch.LegitAttempts == 0 || len(cmp.Epoch.PerType) != 6 {
		t.Fatalf("empty campaign: %+v", cmp.Epoch)
	}
}

// TestEpochCampaignDeterminism: the event-driven comparison is itself
// scheduling-independent — serial and 8-worker runs agree exactly.
func TestEpochCampaignDeterminism(t *testing.T) {
	s := suiteForTest(t)

	serial := *s
	serial.Config.Workers = 1
	parallel := *s
	parallel.Config.Workers = 8

	a, err := serial.CampaignCompare(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.CampaignCompare(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("epoch campaign diverges across worker counts:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

func TestRenderCampaignCompare(t *testing.T) {
	s := suiteForTest(t)
	out, err := s.RenderCampaignCompare(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "identical") {
		t.Errorf("rendered comparison does not report identity:\n%s", out)
	}
	if !strings.Contains(out, "polled") || !strings.Contains(out, "epoch") {
		t.Errorf("rendered comparison missing path rows:\n%s", out)
	}
}

func TestCampaignCompareInvalidRounds(t *testing.T) {
	s := suiteForTest(t)
	if _, err := s.CampaignCompare(context.Background(), 0); err == nil {
		t.Error("zero rounds accepted")
	}
}
