package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/mlearn"
	"iotsid/internal/mlearn/bayes"
	"iotsid/internal/mlearn/knn"
	"iotsid/internal/mlearn/svm"
	"iotsid/internal/mlearn/tree"
)

// BaselineRow compares the paper's chosen decision tree against the other
// classifiers it considered (§IV-C) on one device model.
type BaselineRow struct {
	Model      dataset.Model
	TreeAcc    float64
	KNNAcc     float64
	BayesAcc   float64
	SVMAcc     float64
	TreeFNR    float64
	BestIsTree bool
}

// Baselines trains tree, KNN, Naive Bayes and linear SVM on every model
// under the paper's protocol and reports test accuracies.
func (s *Suite) Baselines() ([]BaselineRow, error) {
	out := make([]BaselineRow, 0, len(dataset.Models()))
	for _, m := range dataset.Models() {
		d, err := s.DatasetFor(m)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.Config.TrainSeed))
		train, test, err := d.SplitStratified(0.7, rng)
		if err != nil {
			return nil, err
		}
		balanced, err := mlearn.OversampleRandom(train, rng)
		if err != nil {
			return nil, err
		}
		row := BaselineRow{Model: m}
		classifiers := []struct {
			c   mlearn.Classifier
			dst *float64
		}{
			{tree.New(tree.Config{MinSamplesLeaf: 5}), &row.TreeAcc},
			{knn.New(5), &row.KNNAcc},
			{bayes.New(), &row.BayesAcc},
			{svm.New(svm.Config{Seed: s.Config.TrainSeed}), &row.SVMAcc},
		}
		for _, entry := range classifiers {
			if err := entry.c.Fit(balanced); err != nil {
				return nil, fmt.Errorf("baseline fit %s: %w", m, err)
			}
			ev := mlearn.Evaluate(entry.c, test)
			*entry.dst = ev.Accuracy()
			if t, ok := entry.c.(*tree.Tree); ok {
				_ = t
				row.TreeFNR = ev.FNR()
			}
		}
		row.BestIsTree = row.TreeAcc >= row.KNNAcc && row.TreeAcc >= row.BayesAcc && row.TreeAcc >= row.SVMAcc
		out = append(out, row)
	}
	return out, nil
}

// RenderBaselines formats the classifier comparison.
func (s *Suite) RenderBaselines() (string, error) {
	rows, err := s.Baselines()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Baseline comparison — test accuracy per classifier (§IV-C choice)\n")
	fmt.Fprintf(&b, "  %-20s %8s %8s %8s %8s\n", "model", "tree", "knn", "bayes", "svm")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %8.4f %8.4f %8.4f %8.4f\n", r.Model, r.TreeAcc, r.KNNAcc, r.BayesAcc, r.SVMAcc)
	}
	return b.String(), nil
}

// CriterionRow is one split-criterion ablation result.
type CriterionRow struct {
	Model     dataset.Model
	Criterion tree.Criterion
	TestAcc   float64
	FNR       float64
}

// CriterionAblation sweeps the three split criteria the paper names
// (information gain, gain ratio, Gini).
func (s *Suite) CriterionAblation() ([]CriterionRow, error) {
	var out []CriterionRow
	for _, m := range dataset.Models() {
		for _, crit := range []tree.Criterion{tree.Gini, tree.Entropy, tree.GainRatio} {
			r, err := s.TrainReport(m, core.TrainConfig{
				Seed: s.Config.TrainSeed,
				Tree: tree.Config{Criterion: crit, MinSamplesLeaf: 5},
			})
			if err != nil {
				return nil, err
			}
			out = append(out, CriterionRow{Model: m, Criterion: crit, TestAcc: r.TestAccuracy, FNR: r.FNR})
		}
	}
	return out, nil
}

// SamplingRow is one imbalance-handling ablation result.
type SamplingRow struct {
	Model    dataset.Model
	Sampling core.Sampling
	TestAcc  float64
	Recall   float64
	FNR      float64
}

// SamplingAblation compares no resampling, random oversampling (the paper's
// choice) and SMOTE.
func (s *Suite) SamplingAblation() ([]SamplingRow, error) {
	var out []SamplingRow
	for _, m := range dataset.Models() {
		for _, sampling := range []core.Sampling{core.SampleNone, core.SampleRandomOversample, core.SampleSMOTE} {
			r, err := s.TrainReport(m, core.TrainConfig{
				Seed:     s.Config.TrainSeed,
				Sampling: sampling,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, SamplingRow{Model: m, Sampling: sampling,
				TestAcc: r.TestAccuracy, Recall: r.Recall, FNR: r.FNR})
		}
	}
	return out, nil
}

// ScalingRow measures accuracy as the corpus expansion grows — the
// "rationally expanded the data set" design choice (§IV-C-1).
type ScalingRow struct {
	Model     dataset.Model
	Positives int
	TestAcc   float64
}

// ScalingAblation sweeps the positive-example budget on one model.
func (s *Suite) ScalingAblation(m dataset.Model, sizes []int) ([]ScalingRow, error) {
	out := make([]ScalingRow, 0, len(sizes))
	for _, n := range sizes {
		d, err := dataset.Build(m, s.Corpus, dataset.BuildConfig{
			Seed:             s.Config.DatasetSeed,
			PositiveOverride: n,
		})
		if err != nil {
			return nil, err
		}
		e, err := core.TrainModel(m, d, core.TrainConfig{Seed: s.Config.TrainSeed})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingRow{Model: m, Positives: n, TestAcc: e.Report.TestAccuracy})
	}
	return out, nil
}
