package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/mlearn"
	"iotsid/internal/mlearn/bayes"
	"iotsid/internal/mlearn/knn"
	"iotsid/internal/mlearn/svm"
	"iotsid/internal/mlearn/tree"
	"iotsid/internal/par"
)

// BaselineRow compares the paper's chosen decision tree against the other
// classifiers it considered (§IV-C) on one device model.
type BaselineRow struct {
	Model      dataset.Model
	TreeAcc    float64
	KNNAcc     float64
	BayesAcc   float64
	SVMAcc     float64
	TreeFNR    float64
	BestIsTree bool
}

// Baselines trains tree, KNN, Naive Bayes and linear SVM on every model
// under the paper's protocol and reports test accuracies. Models run
// concurrently; each model's generator is seeded identically to the serial
// protocol, so the rows are bit-identical at any worker count.
func (s *Suite) Baselines() ([]BaselineRow, error) {
	models := dataset.Models()
	return par.Map(len(models), s.Config.Workers, func(i int) (BaselineRow, error) {
		m := models[i]
		d, err := s.DatasetFor(m)
		if err != nil {
			return BaselineRow{}, err
		}
		rng := rand.New(rand.NewSource(s.Config.TrainSeed))
		train, test, err := d.SplitStratified(0.7, rng)
		if err != nil {
			return BaselineRow{}, err
		}
		balanced, err := mlearn.OversampleRandom(train, rng)
		if err != nil {
			return BaselineRow{}, err
		}
		row := BaselineRow{Model: m}
		classifiers := []struct {
			c   mlearn.Classifier
			dst *float64
		}{
			{tree.New(tree.Config{MinSamplesLeaf: 5}), &row.TreeAcc},
			{knn.New(5), &row.KNNAcc},
			{bayes.New(), &row.BayesAcc},
			{svm.New(svm.Config{Seed: s.Config.TrainSeed}), &row.SVMAcc},
		}
		for _, entry := range classifiers {
			if err := entry.c.Fit(balanced); err != nil {
				return BaselineRow{}, fmt.Errorf("baseline fit %s: %w", m, err)
			}
			ev := mlearn.Evaluate(entry.c, test)
			*entry.dst = ev.Accuracy()
			if _, ok := entry.c.(*tree.Tree); ok {
				row.TreeFNR = ev.FNR()
			}
		}
		row.BestIsTree = row.TreeAcc >= row.KNNAcc && row.TreeAcc >= row.BayesAcc && row.TreeAcc >= row.SVMAcc
		return row, nil
	})
}

// RenderBaselines formats the classifier comparison.
func (s *Suite) RenderBaselines() (string, error) {
	rows, err := s.Baselines()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Baseline comparison — test accuracy per classifier (§IV-C choice)\n")
	fmt.Fprintf(&b, "  %-20s %8s %8s %8s %8s\n", "model", "tree", "knn", "bayes", "svm")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %8.4f %8.4f %8.4f %8.4f\n", r.Model, r.TreeAcc, r.KNNAcc, r.BayesAcc, r.SVMAcc)
	}
	return b.String(), nil
}

// CriterionRow is one split-criterion ablation result.
type CriterionRow struct {
	Model     dataset.Model
	Criterion tree.Criterion
	TestAcc   float64
	FNR       float64
}

// CriterionAblation sweeps the three split criteria the paper names
// (information gain, gain ratio, Gini). The model × criterion grid fans out
// with every cell writing its own row slot, so row order matches the serial
// sweep exactly.
func (s *Suite) CriterionAblation() ([]CriterionRow, error) {
	models := dataset.Models()
	criteria := []tree.Criterion{tree.Gini, tree.Entropy, tree.GainRatio}
	return par.Map(len(models)*len(criteria), s.Config.Workers, func(i int) (CriterionRow, error) {
		m, crit := models[i/len(criteria)], criteria[i%len(criteria)]
		r, err := s.TrainReport(m, core.TrainConfig{
			Seed: s.Config.TrainSeed,
			Tree: tree.Config{Criterion: crit, MinSamplesLeaf: 5},
		})
		if err != nil {
			return CriterionRow{}, err
		}
		return CriterionRow{Model: m, Criterion: crit, TestAcc: r.TestAccuracy, FNR: r.FNR}, nil
	})
}

// SamplingRow is one imbalance-handling ablation result.
type SamplingRow struct {
	Model    dataset.Model
	Sampling core.Sampling
	TestAcc  float64
	Recall   float64
	FNR      float64
}

// SamplingAblation compares no resampling, random oversampling (the paper's
// choice) and SMOTE, fanning the model × strategy grid out like
// CriterionAblation.
func (s *Suite) SamplingAblation() ([]SamplingRow, error) {
	models := dataset.Models()
	strategies := []core.Sampling{core.SampleNone, core.SampleRandomOversample, core.SampleSMOTE}
	return par.Map(len(models)*len(strategies), s.Config.Workers, func(i int) (SamplingRow, error) {
		m, sampling := models[i/len(strategies)], strategies[i%len(strategies)]
		r, err := s.TrainReport(m, core.TrainConfig{
			Seed:     s.Config.TrainSeed,
			Sampling: sampling,
		})
		if err != nil {
			return SamplingRow{}, err
		}
		return SamplingRow{Model: m, Sampling: sampling,
			TestAcc: r.TestAccuracy, Recall: r.Recall, FNR: r.FNR}, nil
	})
}

// ScalingRow measures accuracy as the corpus expansion grows — the
// "rationally expanded the data set" design choice (§IV-C-1).
type ScalingRow struct {
	Model     dataset.Model
	Positives int
	TestAcc   float64
}

// ScalingAblation sweeps the positive-example budget on one model, one
// budget per parallel unit.
func (s *Suite) ScalingAblation(m dataset.Model, sizes []int) ([]ScalingRow, error) {
	return par.Map(len(sizes), s.Config.Workers, func(i int) (ScalingRow, error) {
		d, err := dataset.Build(m, s.Corpus, dataset.BuildConfig{
			Seed:             s.Config.DatasetSeed,
			PositiveOverride: sizes[i],
		})
		if err != nil {
			return ScalingRow{}, err
		}
		e, err := core.TrainModel(m, d, core.TrainConfig{Seed: s.Config.TrainSeed})
		if err != nil {
			return ScalingRow{}, err
		}
		return ScalingRow{Model: m, Positives: sizes[i], TestAcc: e.Report.TestAccuracy}, nil
	})
}
