package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"iotsid/internal/dataset"
	"iotsid/internal/mlearn"
	"iotsid/internal/mlearn/forest"
	"iotsid/internal/mlearn/tree"
	"iotsid/internal/par"
)

// ForestRow compares the paper's single decision tree against a random
// forest on one device model — the model-robustness extension experiment.
type ForestRow struct {
	Model     dataset.Model
	TreeAcc   float64
	ForestAcc float64
	TreeAUC   float64
	ForestAUC float64
}

// ForestComparison trains both models per device under the paper's
// protocol and reports test accuracy and ROC AUC. Devices fan out, and the
// forest's own per-tree bagging fans out beneath them.
func (s *Suite) ForestComparison() ([]ForestRow, error) {
	models := dataset.Models()
	return par.Map(len(models), s.Config.Workers, func(i int) (ForestRow, error) {
		m := models[i]
		d, err := s.DatasetFor(m)
		if err != nil {
			return ForestRow{}, err
		}
		rng := rand.New(rand.NewSource(s.Config.TrainSeed))
		train, test, err := d.SplitStratified(0.7, rng)
		if err != nil {
			return ForestRow{}, err
		}
		balanced, err := mlearn.OversampleRandom(train, rng)
		if err != nil {
			return ForestRow{}, err
		}

		single := tree.New(tree.Config{MinSamplesLeaf: 5})
		if err := single.Fit(balanced); err != nil {
			return ForestRow{}, fmt.Errorf("tree %s: %w", m, err)
		}
		ensemble := forest.New(forest.Config{Trees: 25, Seed: s.Config.TrainSeed,
			Workers: s.Config.Workers, Tree: tree.Config{MinSamplesLeaf: 3}})
		if err := ensemble.Fit(balanced); err != nil {
			return ForestRow{}, fmt.Errorf("forest %s: %w", m, err)
		}

		row := ForestRow{Model: m}
		row.TreeAcc = mlearn.Evaluate(single, test).Accuracy()
		row.ForestAcc = mlearn.Evaluate(ensemble, test).Accuracy()
		if _, auc, err := mlearn.ROC(mlearn.ProbaScorer(single.PredictProba), test); err == nil {
			row.TreeAUC = auc
		} else {
			return ForestRow{}, fmt.Errorf("tree ROC %s: %w", m, err)
		}
		if _, auc, err := mlearn.ROC(mlearn.ProbaScorer(ensemble.PredictProba), test); err == nil {
			row.ForestAUC = auc
		} else {
			return ForestRow{}, fmt.Errorf("forest ROC %s: %w", m, err)
		}
		return row, nil
	})
}

// RenderForestComparison formats the extension experiment.
func (s *Suite) RenderForestComparison() (string, error) {
	rows, err := s.ForestComparison()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Extension — single tree vs random forest (test accuracy / ROC AUC)\n")
	fmt.Fprintf(&b, "  %-20s %10s %10s %10s %10s\n", "model", "tree acc", "forest acc", "tree AUC", "forest AUC")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %10.4f %10.4f %10.4f %10.4f\n",
			r.Model, r.TreeAcc, r.ForestAcc, r.TreeAUC, r.ForestAUC)
	}
	return b.String(), nil
}
