package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"iotsid/internal/dataset"
	"iotsid/internal/mlearn"
	"iotsid/internal/mlearn/forest"
	"iotsid/internal/mlearn/tree"
)

// ForestRow compares the paper's single decision tree against a random
// forest on one device model — the model-robustness extension experiment.
type ForestRow struct {
	Model     dataset.Model
	TreeAcc   float64
	ForestAcc float64
	TreeAUC   float64
	ForestAUC float64
}

// ForestComparison trains both models per device under the paper's
// protocol and reports test accuracy and ROC AUC.
func (s *Suite) ForestComparison() ([]ForestRow, error) {
	out := make([]ForestRow, 0, len(dataset.Models()))
	for _, m := range dataset.Models() {
		d, err := s.DatasetFor(m)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.Config.TrainSeed))
		train, test, err := d.SplitStratified(0.7, rng)
		if err != nil {
			return nil, err
		}
		balanced, err := mlearn.OversampleRandom(train, rng)
		if err != nil {
			return nil, err
		}

		single := tree.New(tree.Config{MinSamplesLeaf: 5})
		if err := single.Fit(balanced); err != nil {
			return nil, fmt.Errorf("tree %s: %w", m, err)
		}
		ensemble := forest.New(forest.Config{Trees: 25, Seed: s.Config.TrainSeed,
			Tree: tree.Config{MinSamplesLeaf: 3}})
		if err := ensemble.Fit(balanced); err != nil {
			return nil, fmt.Errorf("forest %s: %w", m, err)
		}

		row := ForestRow{Model: m}
		row.TreeAcc = mlearn.Evaluate(single, test).Accuracy()
		row.ForestAcc = mlearn.Evaluate(ensemble, test).Accuracy()
		if _, auc, err := mlearn.ROC(mlearn.ProbaScorer(single.PredictProba), test); err == nil {
			row.TreeAUC = auc
		} else {
			return nil, fmt.Errorf("tree ROC %s: %w", m, err)
		}
		if _, auc, err := mlearn.ROC(mlearn.ProbaScorer(ensemble.PredictProba), test); err == nil {
			row.ForestAUC = auc
		} else {
			return nil, fmt.Errorf("forest ROC %s: %w", m, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderForestComparison formats the extension experiment.
func (s *Suite) RenderForestComparison() (string, error) {
	rows, err := s.ForestComparison()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Extension — single tree vs random forest (test accuracy / ROC AUC)\n")
	fmt.Fprintf(&b, "  %-20s %10s %10s %10s %10s\n", "model", "tree acc", "forest acc", "tree AUC", "forest AUC")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %10.4f %10.4f %10.4f %10.4f\n",
			r.Model, r.TreeAcc, r.ForestAcc, r.TreeAUC, r.ForestAUC)
	}
	return b.String(), nil
}
