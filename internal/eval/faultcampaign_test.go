package eval

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func faultResults(t *testing.T, rounds int) map[string]FaultScenarioResult {
	t.Helper()
	s := suiteForTest(t)
	results, err := s.FaultCampaign(context.Background(), rounds)
	if err != nil {
		t.Fatalf("FaultCampaign: %v", err)
	}
	out := make(map[string]FaultScenarioResult, len(results))
	for _, r := range results {
		out[r.Name] = r
	}
	return out
}

// TestFaultCampaignContract asserts the two headline properties of the
// resilience work: a flapping optional source does not take availability to
// zero (bounded staleness absorbs it), and a dead required source rejects
// every sensitive instruction (fail-closed), with zero unsafe allows
// anywhere in the campaign.
func TestFaultCampaignContract(t *testing.T) {
	results := faultResults(t, 4)

	// Baseline: the harness itself is sound — everything is served and no
	// command errors out.
	base, ok := results["baseline"]
	if !ok {
		t.Fatal("baseline scenario missing")
	}
	if base.CollectErrors != 0 || base.FailClosed != 0 || base.StaleServes != 0 {
		t.Errorf("baseline not clean: %+v", base)
	}
	if base.Availability() == 0 {
		t.Error("baseline availability zero")
	}
	if base.Safety() == 0 {
		t.Error("baseline safety zero")
	}

	// Flapping optional source: availability survives, no fail-closed (the
	// required feed keeps answering), and the staleness fallback was
	// actually exercised.
	flaky := results["flaky_optional"]
	if flaky.Availability() == 0 {
		t.Errorf("flaky optional source took availability to zero: %+v", flaky)
	}
	if flaky.StaleServes == 0 {
		t.Errorf("staleness fallback never exercised: %+v", flaky)
	}
	if flaky.FailClosed != 0 {
		t.Errorf("healthy required source but fail-closed decisions: %+v", flaky)
	}
	// A flapping *optional* source must not change safety relative to the
	// baseline regime: the fresh required feed wins every merge.
	if flaky.Safety() < base.Safety() {
		t.Errorf("flaky optional source degraded safety: %.2f < %.2f", flaky.Safety(), base.Safety())
	}

	// Optional blackout: the fresh → stale → missing ladder is walked.
	blackout := results["optional_blackout"]
	if blackout.StaleServes == 0 {
		t.Errorf("blackout never served stale: %+v", blackout)
	}
	if blackout.Availability() == 0 {
		t.Errorf("optional blackout took availability to zero: %+v", blackout)
	}

	// Required source down: every sensitive instruction rejected — attacks
	// and legitimate alike — via explicit fail-closed decisions.
	down := results["required_down"]
	if down.AttackBlocked != down.AttackAttempts {
		t.Errorf("required down: %d/%d attacks blocked, want all", down.AttackBlocked, down.AttackAttempts)
	}
	if down.LegitAllowed != 0 {
		t.Errorf("required down: %d sensitive commands served blind", down.LegitAllowed)
	}
	if down.FailClosed == 0 {
		t.Errorf("required down produced no fail-closed decisions: %+v", down)
	}

	// The fail-closed contract holds campaign-wide: no sensitive
	// instruction was ever allowed while the required source was missing.
	for name, r := range results {
		if r.UnsafeAllows != 0 {
			t.Errorf("scenario %s: %d unsafe allows, want 0", name, r.UnsafeAllows)
		}
		if r.AttackAttempts == 0 || r.LegitAttempts == 0 {
			t.Errorf("scenario %s fired no sensitive instructions: %+v", name, r)
		}
	}
}

// TestFaultCampaignDeterminism: every (scenario, round) unit is seeded from
// its index, so the tables are bit-identical at any worker count.
func TestFaultCampaignDeterminism(t *testing.T) {
	s := suiteForTest(t)
	serial := *s
	serial.Config.Workers = 1
	parallel := *s
	parallel.Config.Workers = 8

	a, err := serial.FaultCampaign(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.FaultCampaign(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault campaign diverges:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

// TestRenderFaultCampaign: the table renders one row per scenario.
func TestRenderFaultCampaign(t *testing.T) {
	s := suiteForTest(t)
	out, err := s.RenderFaultCampaign(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range DefaultFaultScenarios() {
		if !strings.Contains(out, sc.Name) {
			t.Errorf("render missing scenario %s:\n%s", sc.Name, out)
		}
	}
	if !strings.Contains(out, "avail") || !strings.Contains(out, "safety") {
		t.Errorf("render missing headers:\n%s", out)
	}
}

// TestFaultCampaignValidation covers the argument checks.
func TestFaultCampaignValidation(t *testing.T) {
	s := suiteForTest(t)
	if _, err := s.FaultCampaign(context.Background(), 0); err == nil {
		t.Error("want rounds error")
	}
	if _, err := s.FaultCampaignScenarios(context.Background(), nil, 2); err == nil {
		t.Error("want empty-scenarios error")
	}
}
