// Package eval is the experiment harness: one runner per table and figure
// of the paper's evaluation, each producing the same rows/series the paper
// reports, plus the ablations DESIGN.md calls out. Every runner is
// deterministic under the suite's fixed seeds.
package eval

import (
	"fmt"
	"math/rand"
	"sync"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/mlearn"
	"iotsid/internal/survey"
)

// Config seeds the whole evaluation pipeline.
type Config struct {
	Seed        int64
	SurveyN     int // questionnaire population; default 340 (the paper's)
	CorpusSeed  int64
	DatasetSeed int64
	TrainSeed   int64
	// Workers bounds every parallel fan-out in the suite (training,
	// ablation sweeps, transfer, campaign rounds); 0 means GOMAXPROCS.
	// Results are deterministic for any value: each parallel unit's seed is
	// derived from its index before the fan-out.
	Workers int
}

// DefaultConfig is the configuration every reported number uses.
func DefaultConfig() Config {
	return Config{Seed: 2021, SurveyN: 340, CorpusSeed: 1, DatasetSeed: 42, TrainSeed: 9}
}

func (c Config) withDefaults() Config {
	if c.SurveyN == 0 {
		c.SurveyN = 340
	}
	if c.CorpusSeed == 0 {
		c.CorpusSeed = 1
	}
	if c.DatasetSeed == 0 {
		c.DatasetSeed = 42
	}
	if c.TrainSeed == 0 {
		c.TrainSeed = 9
	}
	return c
}

// Suite holds everything the experiments share: the questionnaire results,
// the strategy corpus, the built datasets and the trained feature memory.
type Suite struct {
	Config  Config
	Survey  survey.Results
	Corpus  []dataset.Strategy
	Memory  *core.FeatureMemory
	builder dataset.BuildConfig
	// cache is a pointer so a Suite may be shallow-copied (e.g. to vary
	// Config.Workers) while sharing the memoized datasets.
	cache *datasetCache
}

// datasetCache memoizes per-model dataset builds: Table VI, Fig 6 and every
// ablation used to pay the full corpus expansion again on each DatasetFor
// call. Callers treat the cached datasets as immutable (the split and
// resampling helpers all copy rows).
type datasetCache struct {
	mu    sync.Mutex
	built map[dataset.Model]*mlearn.Dataset
}

// NewSuite runs the shared pipeline once: simulate the questionnaire,
// generate the corpus, build per-model datasets, train the feature memory.
func NewSuite(cfg Config) (*Suite, error) {
	cfg = cfg.withDefaults()
	pop, err := survey.Simulate(survey.DefaultProfile(), cfg.SurveyN, survey.ModeQuota,
		rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("eval: survey: %w", err)
	}
	res, err := survey.Aggregate(pop)
	if err != nil {
		return nil, fmt.Errorf("eval: aggregate: %w", err)
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: cfg.CorpusSeed})
	if err != nil {
		return nil, fmt.Errorf("eval: corpus: %w", err)
	}
	bcfg := dataset.BuildConfig{Seed: cfg.DatasetSeed, Workers: cfg.Workers}
	memory, err := core.Train(corpus, bcfg, core.TrainConfig{Seed: cfg.TrainSeed, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("eval: train: %w", err)
	}
	return &Suite{Config: cfg, Survey: res, Corpus: corpus, Memory: memory, builder: bcfg,
		cache: &datasetCache{built: make(map[dataset.Model]*mlearn.Dataset)}}, nil
}
