package eval

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"iotsid/internal/automation"
	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/par"
	"iotsid/internal/sensor"
	"iotsid/internal/seq"
)

// SeqScenario names one temporal-attack scenario of the sequence campaign.
// Unlike the static campaign's attack classes, every scene staged here is
// individually tree-legal — the attack lives entirely in the ordering and
// timing of the instruction stream, which only the sequence judge can see.
type SeqScenario string

const (
	// SeqScenarioClean is the control: a coherent benign day, no attack.
	// Both judges must keep it fully available.
	SeqScenarioClean SeqScenario = "clean"
	// SeqScenarioAutomationChain triggers a rule cascade — three status
	// reads and a sensitive action fired from one snapshot, all sharing a
	// single timestamp. Each scene passes the tree's voice-legal branch;
	// the same-tick burst is the signature.
	SeqScenarioAutomationChain SeqScenario = "automation_chain"
	// SeqScenarioStaleReplay re-fires a captured voice-legal scene whose
	// hour bucket no benign day ever jumps to. The tree sees a legal hour;
	// the sequence judge sees an impossible transition.
	SeqScenarioStaleReplay SeqScenario = "stale_replay"
)

// seqScenarios fixes the campaign order (and therefore the digest).
var seqScenarios = []SeqScenario{SeqScenarioClean, SeqScenarioAutomationChain, SeqScenarioStaleReplay}

// SeqJudgeCounts tallies one judge's decisions within a scenario.
type SeqJudgeCounts struct {
	AttackAttempts int `json:"attack_attempts"`
	AttackBlocked  int `json:"attack_blocked"`
	LegitAttempts  int `json:"legit_attempts"`
	LegitBlocked   int `json:"legit_blocked"`
}

// DetectionRate returns the fraction of staged attacks blocked (1 when the
// scenario stages none).
func (c SeqJudgeCounts) DetectionRate() float64 {
	if c.AttackAttempts == 0 {
		return 1
	}
	return float64(c.AttackBlocked) / float64(c.AttackAttempts)
}

// FalseBlockRate returns the fraction of benign events wrongly rejected.
func (c SeqJudgeCounts) FalseBlockRate() float64 {
	if c.LegitAttempts == 0 {
		return 0
	}
	return float64(c.LegitBlocked) / float64(c.LegitAttempts)
}

// Availability is the benign-traffic complement of FalseBlockRate.
func (c SeqJudgeCounts) Availability() float64 { return 1 - c.FalseBlockRate() }

// SeqScenarioResult is one scenario's side-by-side outcome: the static tree
// alone versus the tree combined fail-closed with the sequence judge.
type SeqScenarioResult struct {
	Scenario SeqScenario    `json:"scenario"`
	Tree     SeqJudgeCounts `json:"tree"`
	Combined SeqJudgeCounts `json:"combined"`
}

// SeqCampaignResult is the full campaign outcome.
type SeqCampaignResult struct {
	Rounds    int                 `json:"rounds"`
	Scenarios []SeqScenarioResult `json:"scenarios"`
	// UnsafeAllows counts staged attacks the combined judge let through —
	// the campaign's safety criterion is zero.
	UnsafeAllows int `json:"unsafe_allows"`
	// Digest folds every decision (both judges, every scenario, every
	// round) through FNV-64 in unit order — bit-identical at any worker
	// count, so two runs can be compared without shipping the streams.
	Digest string `json:"digest"`
}

// seqFold folds one decision into an FNV-64a style digest: the allow bit,
// then the reason bytes.
func seqFold(d uint64, allowed bool, reason string) uint64 {
	var bit uint64
	if allowed {
		bit = 1
	}
	d ^= bit
	d *= 1099511628211
	for i := 0; i < len(reason); i++ {
		d ^= uint64(reason[i])
		d *= 1099511628211
	}
	return d
}

// seqUnitOutcome is one (scenario, round) unit's tally.
type seqUnitOutcome struct {
	tree     SeqJudgeCounts
	combined SeqJudgeCounts
	digest   uint64
}

// SeqCampaign runs the temporal-attack campaign: per (scenario, round)
// unit, two frameworks — the static tree alone and the tree combined with
// the sequence judge — are driven with bit-identical instruction streams:
// a benign warm-up day, then the scenario's attack. Units fan out over
// s.Config.Workers; every unit is fully self-contained and seeded from its
// index before the fan-out, so the tallies and the digest are identical
// for every worker count. The shared sequence table is trained once, up
// front, from the same deterministic generator the judge ships with.
func (s *Suite) SeqCampaign(ctx context.Context, rounds int) (SeqCampaignResult, error) {
	if rounds <= 0 {
		return SeqCampaignResult{}, fmt.Errorf("eval: rounds must be positive")
	}
	detector, err := core.DefaultDetector()
	if err != nil {
		return SeqCampaignResult{}, err
	}
	set, err := seq.Train(seq.TrainConfig{Seed: s.Config.Seed + 7, Models: []dataset.Model{dataset.ModelWindow}})
	if err != nil {
		return SeqCampaignResult{}, err
	}
	registry := instr.BuiltinRegistry()
	units := len(seqScenarios) * rounds

	outcomes, err := par.Map(units, s.Config.Workers, func(u int) (seqUnitOutcome, error) {
		if err := ctx.Err(); err != nil {
			return seqUnitOutcome{}, err
		}
		return s.seqRound(seqScenarios[u/rounds], detector, set, registry,
			rand.New(rand.NewSource(s.Config.Seed+515+9973*int64(u))))
	})
	if err != nil {
		return SeqCampaignResult{}, err
	}

	res := SeqCampaignResult{Rounds: rounds, Scenarios: make([]SeqScenarioResult, len(seqScenarios))}
	digest := uint64(14695981039346656037)
	for i, sc := range seqScenarios {
		res.Scenarios[i].Scenario = sc
	}
	for u, o := range outcomes {
		row := &res.Scenarios[u/rounds]
		row.Tree.AttackAttempts += o.tree.AttackAttempts
		row.Tree.AttackBlocked += o.tree.AttackBlocked
		row.Tree.LegitAttempts += o.tree.LegitAttempts
		row.Tree.LegitBlocked += o.tree.LegitBlocked
		row.Combined.AttackAttempts += o.combined.AttackAttempts
		row.Combined.AttackBlocked += o.combined.AttackBlocked
		row.Combined.LegitAttempts += o.combined.LegitAttempts
		row.Combined.LegitBlocked += o.combined.LegitBlocked
		res.UnsafeAllows += o.combined.AttackAttempts - o.combined.AttackBlocked
		digest = digest*1099511628211 ^ o.digest
	}
	res.Digest = fmt.Sprintf("%016x", digest)
	return res, nil
}

// seqRound runs one self-contained (scenario, round) unit and returns its
// tally. Both frameworks see the exact same scenes in the exact same
// order; the only difference between them is the armed sequence judge.
func (s *Suite) seqRound(scenario SeqScenario, detector *core.Detector, set *seq.Set,
	registry *instr.Registry, rng *rand.Rand) (seqUnitOutcome, error) {
	nullCollector := core.CollectorFunc(func(context.Context) (sensor.Snapshot, error) {
		return sensor.Snapshot{}, nil
	})
	treeFW, err := core.New(core.Config{Detector: detector, Collector: nullCollector, Memory: s.Memory})
	if err != nil {
		return seqUnitOutcome{}, err
	}
	seqFW, err := core.New(core.Config{Detector: detector, Collector: nullCollector, Memory: s.Memory, Sequence: set})
	if err != nil {
		return seqUnitOutcome{}, err
	}

	out := seqUnitOutcome{digest: 14695981039346656037}
	// judgeBoth fires the same instruction+scene through both frameworks
	// and tallies it as benign traffic or as a staged attack.
	judgeBoth := func(op string, e seq.TraceEvent, attack bool) error {
		in, err := registry.Build(op, "window-1", instr.OriginUnknown, nil)
		if err != nil {
			return err
		}
		scene := e.WindowScene()
		for i, fw := range [2]*core.Framework{treeFW, seqFW} {
			dec, err := fw.Judge(in, scene)
			if err != nil {
				return err
			}
			counts := &out.tree
			if i == 1 {
				counts = &out.combined
			}
			if attack {
				counts.AttackAttempts++
				if !dec.Allowed {
					counts.AttackBlocked++
				}
			} else {
				counts.LegitAttempts++
				if !dec.Allowed {
					counts.LegitBlocked++
				}
			}
			out.digest = seqFold(out.digest, dec.Allowed, dec.Reason)
		}
		return nil
	}

	// Warm-up: a coherent benign day (daytime hours, so the tree's
	// voice-legal branch holds throughout). The clean control simply runs
	// a longer one.
	warmN := 14
	if scenario == SeqScenarioClean {
		warmN = 20
	}
	trace := seq.LegalTrace(rng, warmN, 8, 13)
	for _, e := range trace {
		op := "window.get_state"
		if e.Sensitive {
			op = "window.open"
		}
		if err := judgeBoth(op, e, false); err != nil {
			return seqUnitOutcome{}, err
		}
	}
	last := trace[len(trace)-1]

	switch scenario {
	case SeqScenarioClean:
		// Control: no attack.
	case SeqScenarioAutomationChain:
		if err := out.runChain(treeFW, seqFW, registry, last); err != nil {
			return seqUnitOutcome{}, err
		}
	case SeqScenarioStaleReplay:
		// The captured scene re-fires with its stale hour; three attempts,
		// 90 s apart. A rejected event never enters the history, so the
		// replay stays anomalous on every retry.
		replay := seq.TraceEvent{
			At:        last.At.Add(90 * time.Second),
			Hour:      seq.ReplayHour(last.Hour),
			Voice:     true,
			Occupied:  last.Occupied,
			Sensitive: true,
		}
		for attempt := 0; attempt < 3; attempt++ {
			if err := judgeBoth("window.open", replay, true); err != nil {
				return seqUnitOutcome{}, err
			}
			replay.At = replay.At.Add(90 * time.Second)
		}
	default:
		return seqUnitOutcome{}, fmt.Errorf("eval: unknown sequence scenario %q", scenario)
	}
	return out, nil
}

// runChain stages the automation-chain attack through the real rule
// engine: one trigger snapshot fires three status reads and then the
// sensitive action, every dispatch gated by the framework's interceptor —
// so all four instructions reach the judge with one shared timestamp, the
// way a compromised rule pack would deliver them.
func (o *seqUnitOutcome) runChain(treeFW, seqFW *core.Framework, registry *instr.Registry, last seq.TraceEvent) error {
	burst := seq.TraceEvent{At: last.At.Add(40 * time.Second), Hour: last.Hour, Voice: true, Occupied: last.Occupied}
	snap := burst.WindowScene()
	for i, fw := range [2]*core.Framework{treeFW, seqFW} {
		engine := automation.NewEngine(registry, nil)
		engine.SetInterceptor(automation.Interceptor(fw.Interceptor()))
		for r := 1; r <= 3; r++ {
			if err := engine.AddRuleText(fmt.Sprintf("chain status %d", r),
				`WHEN voice_command == TRUE THEN window.get_state @ window-1`); err != nil {
				return err
			}
		}
		if err := engine.AddRuleText("chain open",
			`WHEN voice_command == TRUE THEN window.open @ window-1`); err != nil {
			return err
		}
		events := engine.Evaluate(snap)
		counts := &o.tree
		if i == 1 {
			counts = &o.combined
		}
		for _, ev := range events {
			if ev.Err != "" {
				return fmt.Errorf("eval: chain rule %q: %s", ev.Rule, ev.Err)
			}
			if ev.Op == "window.open" {
				counts.AttackAttempts++
				if !ev.Allowed {
					counts.AttackBlocked++
				}
			} else {
				// The status fillers are part of the attack delivery, but a
				// judge that rejects them is paying availability for it.
				counts.LegitAttempts++
				if !ev.Allowed {
					counts.LegitBlocked++
				}
			}
			o.digest = seqFold(o.digest, ev.Allowed, ev.Reason)
		}
	}
	return nil
}

// RenderSeqCampaign formats the side-by-side table.
func (s *Suite) RenderSeqCampaign(ctx context.Context, rounds int) (string, error) {
	r, err := s.SeqCampaign(ctx, rounds)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Sequence campaign — %d rounds per scenario, static tree vs. tree+sequence\n", r.Rounds)
	fmt.Fprintf(&b, "  %-18s %-9s %15s %14s %8s\n", "scenario", "judge", "attacks blocked", "false blocks", "avail")
	for _, row := range r.Scenarios {
		fmt.Fprintf(&b, "  %-18s %-9s %9d/%3d %10d/%3d %7.1f%%\n", row.Scenario, "tree",
			row.Tree.AttackBlocked, row.Tree.AttackAttempts,
			row.Tree.LegitBlocked, row.Tree.LegitAttempts, 100*row.Tree.Availability())
		fmt.Fprintf(&b, "  %-18s %-9s %9d/%3d %10d/%3d %7.1f%%\n", "", "tree+seq",
			row.Combined.AttackBlocked, row.Combined.AttackAttempts,
			row.Combined.LegitBlocked, row.Combined.LegitAttempts, 100*row.Combined.Availability())
	}
	fmt.Fprintf(&b, "  combined-judge unsafe allows: %d\n", r.UnsafeAllows)
	fmt.Fprintf(&b, "  decision digest %s (identical at any worker count)\n", r.Digest)
	return b.String(), nil
}
