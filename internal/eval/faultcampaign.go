package eval

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/par"
	"iotsid/internal/resilience"
)

// FaultScenario describes one fault-injection regime for the resilience
// campaign: per-source fault probabilities for the chaos wrappers, the
// optional source's staleness budget, and the merge order.
type FaultScenario struct {
	Name string `json:"name"`
	// ReqError / ReqHang are the fault probabilities of the required source.
	ReqError float64 `json:"req_error"`
	ReqHang  float64 `json:"req_hang"`
	// OptError / OptHang / OptByzantine are the optional source's.
	OptError     float64 `json:"opt_error"`
	OptHang      float64 `json:"opt_hang"`
	OptByzantine float64 `json:"opt_byzantine"`
	// OptBlackoutAfter, when positive, overrides the stochastic optional
	// plan: the first N calls succeed, every later call errors — the
	// clean outage that walks the fresh → stale → missing ladder.
	OptBlackoutAfter int `json:"opt_blackout_after"`
	// Staleness is the optional source's last-good serving budget.
	Staleness time.Duration `json:"staleness"`
	// OptionalOverrides declares the optional source after the required one,
	// so its (possibly corrupted) features win shared-feature merges. The
	// default order lets the fresh required feed win.
	OptionalOverrides bool `json:"optional_overrides"`
}

// DefaultFaultScenarios is the published fault campaign: a healthy
// baseline, a flapping optional source absorbed by bounded staleness, a
// clean optional blackout walking the staleness ladder, a dead required
// source forcing fail-closed, and a byzantine optional source allowed to
// win merges.
func DefaultFaultScenarios() []FaultScenario {
	return []FaultScenario{
		{Name: "baseline", Staleness: 30 * time.Second},
		{Name: "flaky_optional", OptError: 0.35, OptHang: 0.1, Staleness: 5 * time.Minute},
		{Name: "optional_blackout", OptBlackoutAfter: 3, Staleness: 45 * time.Second},
		{Name: "required_down", ReqError: 1, Staleness: 30 * time.Second},
		{Name: "byzantine_optional", OptByzantine: 1, Staleness: 30 * time.Second, OptionalOverrides: true},
	}
}

// FaultScenarioResult tallies one scenario across its rounds. Attack and
// legitimate tallies count only sensitive instructions — the non-sensitive
// ones (the TV class) are outside the fail-closed contract.
type FaultScenarioResult struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`
	// AttackAttempts/Blocked: sensitive instructions fired from staged
	// attack scenes and how many the IDS rejected (by judgment or by
	// failing closed).
	AttackAttempts int `json:"attack_attempts"`
	AttackBlocked  int `json:"attack_blocked"`
	// LegitAttempts/Allowed: the same sensitive instructions from legal
	// scenes and how many were served — the availability side.
	LegitAttempts int `json:"legit_attempts"`
	LegitAllowed  int `json:"legit_allowed"`
	// FailClosed counts decisions rejected explicitly because a required
	// source was missing.
	FailClosed int `json:"fail_closed"`
	// StaleServes counts commands decided while the optional source served
	// from its bounded-staleness fallback.
	StaleServes int `json:"stale_serves"`
	// CollectErrors counts commands that got no decision at all (no context
	// from any source).
	CollectErrors int `json:"collect_errors"`
	// UnsafeAllows counts sensitive instructions ALLOWED while the required
	// source was missing — the fail-closed contract demands zero.
	UnsafeAllows int `json:"unsafe_allows"`
}

// Availability is the fraction of legitimate sensitive commands served.
func (r FaultScenarioResult) Availability() float64 {
	if r.LegitAttempts == 0 {
		return 0
	}
	return float64(r.LegitAllowed) / float64(r.LegitAttempts)
}

// Safety is the fraction of sensitive attack instructions rejected.
func (r FaultScenarioResult) Safety() float64 {
	if r.AttackAttempts == 0 {
		return 0
	}
	return float64(r.AttackBlocked) / float64(r.AttackAttempts)
}

// add merges one round tally into the scenario total.
func (r *FaultScenarioResult) add(o FaultScenarioResult) {
	r.Rounds += o.Rounds
	r.AttackAttempts += o.AttackAttempts
	r.AttackBlocked += o.AttackBlocked
	r.LegitAttempts += o.LegitAttempts
	r.LegitAllowed += o.LegitAllowed
	r.FailClosed += o.FailClosed
	r.StaleServes += o.StaleServes
	r.CollectErrors += o.CollectErrors
	r.UnsafeAllows += o.UnsafeAllows
}

// optPlan builds the optional source's fault plan for a scenario.
func (sc FaultScenario) optPlan(seed int64) func(int) core.FaultKind {
	if sc.OptBlackoutAfter > 0 {
		n := sc.OptBlackoutAfter
		return func(call int) core.FaultKind {
			if call < n {
				return core.FaultNone
			}
			return core.FaultError
		}
	}
	return core.ChaosPlan(seed, sc.OptError, sc.OptHang, sc.OptByzantine)
}

// FaultCampaign runs every scenario for the given number of rounds against
// a live two-source deployment: a required chaos-wrapped sim feed and an
// optional chaos-wrapped sim feed behind retry policies, a breaker on the
// required source, bounded staleness on the optional one, and a health
// registry observed after every command.
//
// Each (scenario, round) unit is fully self-contained — its own home,
// framework, fake clock, chaos plans and scene generator, all seeded from
// the unit index before the fan-out — so the tables are identical at any
// worker count.
func (s *Suite) FaultCampaign(ctx context.Context, rounds int) ([]FaultScenarioResult, error) {
	return s.FaultCampaignScenarios(ctx, DefaultFaultScenarios(), rounds)
}

// FaultCampaignScenarios is FaultCampaign over a caller-supplied scenario
// list. ctx is the parent of every per-call timeout the rounds impose.
func (s *Suite) FaultCampaignScenarios(ctx context.Context, scenarios []FaultScenario, rounds int) ([]FaultScenarioResult, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("eval: rounds must be positive")
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("eval: no fault scenarios")
	}
	units := len(scenarios) * rounds
	outcomes, err := par.Map(units, s.Config.Workers, func(u int) (FaultScenarioResult, error) {
		return s.faultRound(ctx, scenarios[u/rounds], int64(u))
	})
	if err != nil {
		return nil, err
	}
	out := make([]FaultScenarioResult, len(scenarios))
	for i, sc := range scenarios {
		out[i].Name = sc.Name
		for r := 0; r < rounds; r++ {
			out[i].add(outcomes[i*rounds+r])
		}
	}
	return out, nil
}

// faultRound runs one self-contained round of one scenario.
func (s *Suite) faultRound(ctx context.Context, sc FaultScenario, unit int64) (FaultScenarioResult, error) {
	h, err := home.NewStandard(home.EnvConfig{Seed: s.Config.Seed + 303})
	if err != nil {
		return FaultScenarioResult{}, err
	}
	detector, err := core.DefaultDetector()
	if err != nil {
		return FaultScenarioResult{}, err
	}
	registry := instr.BuiltinRegistry()

	// The fake clock: advanced between commands so staleness budgets and
	// breaker timeouts play out without wall-clock time.
	now := time.Unix(1_600_000_000, 0)
	clock := func() time.Time { return now }

	reqChaos := &core.ChaosCollector{
		Inner: &core.SimCollector{Env: h.Env()},
		Plan:  core.ChaosPlan(s.Config.Seed+7*unit, sc.ReqError, sc.ReqHang, 0),
	}
	optChaos := &core.ChaosCollector{
		Inner: &core.SimCollector{Env: h.Env()},
		Plan:  sc.optPlan(s.Config.Seed + 7*unit + 1),
	}
	retry := resilience.Policy{
		MaxAttempts:    2,
		AttemptTimeout: 10 * time.Millisecond, // releases hang faults
		Seed:           s.Config.Seed + unit,
		Sleep:          func(context.Context, time.Duration) error { return nil },
	}
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		Name: "required", FailureThreshold: 3, OpenTimeout: 2 * time.Minute, Now: clock,
	})
	required := core.Source{
		Name: "required", Required: true, Collector: reqChaos, Retry: &retry, Breaker: breaker,
	}
	optional := core.Source{
		Name: "optional", Staleness: sc.Staleness, Collector: optChaos, Retry: &retry,
	}
	order := []core.Source{optional, required}
	if sc.OptionalOverrides {
		order = []core.Source{required, optional}
	}
	health := resilience.NewRegistry()
	mc, err := core.NewMultiCollector(core.MultiConfig{Now: clock, Health: health}, order...)
	if err != nil {
		return FaultScenarioResult{}, err
	}
	framework, err := core.New(core.Config{Detector: detector, Collector: mc, Memory: s.Memory})
	if err != nil {
		return FaultScenarioResult{}, err
	}

	rng := rand.New(rand.NewSource(s.Config.Seed + 505 + unit))
	res := FaultScenarioResult{Name: sc.Name, Rounds: 1}

	// sourceState reads one source's health row after a command.
	sourceState := func(name string) string {
		for _, sh := range health.Snapshot() {
			if sh.Name == name {
				return sh.State
			}
		}
		return ""
	}
	fire := func(op, device string) (allowed, decided bool, err error) {
		in, err := registry.Build(op, device, instr.OriginUnknown, nil)
		if err != nil {
			return false, false, err
		}
		now = now.Add(5 * time.Second)
		callCtx, cancel := context.WithTimeout(ctx, time.Second)
		dec, err := framework.Authorize(callCtx, in)
		cancel()
		if err != nil {
			res.CollectErrors++
			return false, false, nil
		}
		if sourceState("optional") == string(core.SourceStale) {
			res.StaleServes++
		}
		if strings.Contains(dec.Reason, "fail closed") {
			res.FailClosed++
		}
		if dec.Allowed && sourceState("required") == string(core.SourceMissing) {
			res.UnsafeAllows++
		}
		if dec.Allowed {
			if err := h.Execute(in); err != nil {
				return false, false, err
			}
		}
		return dec.Allowed, true, nil
	}

	for _, a := range campaignAttacks {
		in, err := registry.Build(a.Op, a.Device, instr.OriginUnknown, nil)
		if err != nil {
			return FaultScenarioResult{}, err
		}
		// The campaign measures the fail-closed contract, which covers
		// sensitive instructions only.
		if !detector.IsSensitive(in) {
			continue
		}
		attack, err := dataset.AttackScene(a.Model, rng)
		if err != nil {
			return FaultScenarioResult{}, err
		}
		h.Env().Apply(attack)
		allowed, decided, err := fire(a.Op, a.Device)
		if err != nil {
			return FaultScenarioResult{}, err
		}
		res.AttackAttempts++
		if decided && !allowed {
			res.AttackBlocked++
		} else if !decided {
			// No decision at all is still a blocked attack: nothing was
			// forwarded.
			res.AttackBlocked++
		}

		legal, err := dataset.LegalScene(a.Model, rng)
		if err != nil {
			return FaultScenarioResult{}, err
		}
		h.Env().Apply(legal)
		allowed, _, err = fire(a.Op, a.Device)
		if err != nil {
			return FaultScenarioResult{}, err
		}
		res.LegitAttempts++
		if allowed {
			res.LegitAllowed++
		}
	}
	return res, nil
}

// RenderFaultCampaign formats the availability-versus-safety table of the
// fault campaign.
func (s *Suite) RenderFaultCampaign(ctx context.Context, rounds int) (string, error) {
	results, err := s.FaultCampaign(ctx, rounds)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fault campaign — %d rounds per scenario, sensitive instructions only\n", rounds)
	fmt.Fprintf(&b, "  %-20s %6s %7s %12s %7s %8s %7s\n",
		"scenario", "avail", "safety", "fail-closed", "stale", "no-ctx", "unsafe")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-20s %5.1f%% %6.1f%% %12d %7d %8d %7d\n",
			r.Name, 100*r.Availability(), 100*r.Safety(),
			r.FailClosed, r.StaleServes, r.CollectErrors, r.UnsafeAllows)
	}
	return b.String(), nil
}
