package eval

import (
	"fmt"
	"strings"

	"iotsid/internal/dataset"
	"iotsid/internal/mlearn/tree"
)

// Fig5Point is one point of the popularity curve: a strategy rank and its
// user count.
type Fig5Point struct {
	Rank  int
	Users int
}

// Fig5 reproduces the per-strategy user-count distribution (sampled at
// informative ranks).
func (s *Suite) Fig5() []Fig5Point {
	counts := dataset.UserCounts(s.Corpus)
	ranks := []int{1, 2, 3, 5, 10, 20, 50, 100, 200, 400, 804}
	out := make([]Fig5Point, 0, len(ranks))
	for _, r := range ranks {
		if r <= len(counts) {
			out = append(out, Fig5Point{Rank: r, Users: counts[r-1]})
		}
	}
	return out
}

// RenderFig5 formats Fig 5.
func (s *Suite) RenderFig5() string {
	var b strings.Builder
	b.WriteString("Fig 5 — user usage of different strategies (rank → users)\n")
	for _, p := range s.Fig5() {
		fmt.Fprintf(&b, "  rank %4d: %6d users\n", p.Rank, p.Users)
	}
	return b.String()
}

// Fig6 returns the window model's feature weights — the paper's
// representative feature-weight map.
func (s *Suite) Fig6() ([]tree.Weight, error) {
	e, ok := s.Memory.Entry(dataset.ModelWindow)
	if !ok {
		return nil, fmt.Errorf("eval: window model not trained")
	}
	return e.Weights, nil
}

// RenderFig6 formats Fig 6.
func (s *Suite) RenderFig6() string {
	weights, err := s.Fig6()
	if err != nil {
		return "Fig 6 unavailable: " + err.Error()
	}
	var b strings.Builder
	b.WriteString("Fig 6 — window related attribute feature weight map\n")
	b.WriteString("  (paper order: smoke > gas > voice > lock > temp > aqi > weather > motion > hour)\n")
	for _, w := range weights {
		bar := strings.Repeat("#", int(w.Weight*60+0.5))
		fmt.Fprintf(&b, "  %-18s %6.4f %s\n", w.Attr, w.Weight, bar)
	}
	return b.String()
}

// Fig7Row is one camera-warning category of Fig 7.
type Fig7Row struct {
	Trigger    dataset.WarnTrigger
	Strategies int
	SharePct   float64
}

// Fig7 reproduces the camera warning statistics over the 319
// warning-related strategies.
func (s *Suite) Fig7() []Fig7Row {
	stats := dataset.WarnStats(s.Corpus)
	total := 0
	for _, n := range stats {
		total += n
	}
	order := []dataset.WarnTrigger{
		dataset.WarnDoorWindowOpened, dataset.WarnSmokeFire,
		dataset.WarnWaterLeak, dataset.WarnGas, dataset.WarnMotion,
	}
	out := make([]Fig7Row, 0, len(order))
	for _, w := range order {
		share := 0.0
		if total > 0 {
			share = 100 * float64(stats[w]) / float64(total)
		}
		out = append(out, Fig7Row{Trigger: w, Strategies: stats[w], SharePct: share})
	}
	return out
}

// RenderFig7 formats Fig 7.
func (s *Suite) RenderFig7() string {
	var b strings.Builder
	rows := s.Fig7()
	total := 0
	for _, r := range rows {
		total += r.Strategies
	}
	fmt.Fprintf(&b, "Fig 7 — camera warning statistics (%d strategies, paper: 319)\n", total)
	for _, r := range rows {
		bar := strings.Repeat("#", r.Strategies/4)
		fmt.Fprintf(&b, "  %-22s %4d (%5.1f%%) %s\n", r.Trigger, r.Strategies, r.SharePct, bar)
	}
	return b.String()
}
