package eval

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/par"
	"iotsid/internal/sensor"
)

// AttackType names one attack class of the campaign.
type AttackType string

// The campaign's attack classes — one per evaluated device model, each
// staged from that model's attack-scene generator and delivered as the
// model's sensitive control instruction. Note tv_scare: TV control never
// crossed the questionnaire's 50 % high-threat bar (Table III), so the
// sensitive command detector waves it through untouched — the campaign
// keeps it to expose that scope boundary of the paper's design.
const (
	AttackWindowBurglary AttackType = "window_burglary"
	AttackAirconWaste    AttackType = "aircon_energy_waste"
	AttackLightCasing    AttackType = "light_casing"
	AttackCurtainPrivacy AttackType = "curtain_privacy"
	AttackTVScare        AttackType = "tv_scare"
	AttackCookerFire     AttackType = "cooker_fire_risk"
)

// campaignAttacks binds each attack type to its model and instruction.
var campaignAttacks = []struct {
	Type   AttackType
	Model  dataset.Model
	Op     string
	Device string
}{
	{AttackWindowBurglary, dataset.ModelWindow, "window.open", "window-1"},
	{AttackAirconWaste, dataset.ModelAircon, "aircon.set_cool", "aircon-1"},
	{AttackLightCasing, dataset.ModelLight, "light.on", "light-1"},
	{AttackCurtainPrivacy, dataset.ModelCurtain, "curtain.open", "curtain-1"},
	{AttackTVScare, dataset.ModelTV, "tv.on", "tv-1"},
	{AttackCookerFire, dataset.ModelKitchen, "cooker.start", "cooker-1"},
}

// CampaignCounts tallies one attack type: the staged attacks, and the
// legitimate twin commands (the same instruction fired from a legal
// scene) whose wrongful blocks are the scenario's availability cost.
type CampaignCounts struct {
	Attempts      int `json:"attempts"`
	Blocked       int `json:"blocked"`
	LegitAttempts int `json:"legit_attempts"`
	LegitBlocked  int `json:"legit_blocked"`
}

// CampaignResult is the outcome of a full attack campaign.
type CampaignResult struct {
	PerType map[AttackType]CampaignCounts `json:"per_type"`
	// Legitimate sensitive commands issued from legal scenes, and how many
	// the IDS wrongly blocked.
	LegitAttempts int `json:"legit_attempts"`
	LegitBlocked  int `json:"legit_blocked"`
}

// BlockRate returns the fraction of all attack attempts intercepted.
func (r CampaignResult) BlockRate() float64 {
	var attempts, blocked int
	for _, c := range r.PerType {
		attempts += c.Attempts
		blocked += c.Blocked
	}
	if attempts == 0 {
		return 0
	}
	return float64(blocked) / float64(attempts)
}

// FalseBlockRate returns the fraction of legitimate commands wrongly
// rejected.
func (r CampaignResult) FalseBlockRate() float64 {
	if r.LegitAttempts == 0 {
		return 0
	}
	return float64(r.LegitBlocked) / float64(r.LegitAttempts)
}

// roundOutcome records one campaign round: per attack index, whether the
// staged attack and the interleaved legitimate command were blocked, plus
// the full decisions so collection paths can be compared bit-for-bit.
type roundOutcome struct {
	attackBlocked   []bool
	legitBlocked    []bool
	attackDecisions []core.Decision
	legitDecisions  []core.Decision
}

// campaignMode parameterizes a campaign run over the collection path. The
// setup hook builds one round's collector over its private home and
// returns an optional sync hook the round runner calls after every scene
// Apply — the push-mode bridge between staging a scene and deciding
// against it (nil for paths that read the environment directly).
type campaignMode struct {
	setup func(h *home.Home) (core.Collector, func() error, error)
}

// polledMode is the baseline: every Authorize polls the environment.
func polledMode() campaignMode {
	return campaignMode{
		setup: func(h *home.Home) (core.Collector, func() error, error) {
			return &core.SimCollector{Env: h.Env()}, nil, nil
		},
	}
}

// Campaign runs a mixed attack campaign against a live deployment: per
// round, every attack type stages its context in the home and fires its
// sensitive instruction through the IDS gate; interleaved, legitimate
// commands are issued from legal scenes. Uses the suite's trained memory.
//
// Rounds fan out over s.Config.Workers goroutines. Each round is fully
// self-contained — its own standard home, its own framework, and a scene
// generator seeded from the round index before the fan-out — and per-round
// outcomes land in index slots, merged in round order. The tally is
// therefore identical for every worker count (and rounds no longer leak
// device state into each other through the shared environment).
//
// ctx bounds every Authorize call; the campaign aborts on the first
// judgment error, so cancellation propagates between rounds too.
func (s *Suite) Campaign(ctx context.Context, rounds int) (CampaignResult, error) {
	outcomes, err := s.runCampaign(ctx, rounds, polledMode())
	if err != nil {
		return CampaignResult{}, err
	}
	return tallyCampaign(outcomes), nil
}

// runCampaign executes the round fan-out for one collection mode and
// returns the per-round outcomes in round order.
func (s *Suite) runCampaign(ctx context.Context, rounds int, mode campaignMode) ([]roundOutcome, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("eval: rounds must be positive")
	}
	detector, err := core.DefaultDetector()
	if err != nil {
		return nil, err
	}
	registry := instr.BuiltinRegistry()

	return par.Map(rounds, s.Config.Workers, func(round int) (roundOutcome, error) {
		h, err := home.NewStandard(home.EnvConfig{Seed: s.Config.Seed + 101})
		if err != nil {
			return roundOutcome{}, err
		}
		collector, sync, err := mode.setup(h)
		if err != nil {
			return roundOutcome{}, err
		}
		framework, err := core.New(core.Config{
			Detector:  detector,
			Collector: collector,
			Memory:    s.Memory,
		})
		if err != nil {
			return roundOutcome{}, err
		}
		rng := rand.New(rand.NewSource(s.Config.Seed + 202 + int64(round)))
		fire := func(op, device string, scene sensor.Snapshot) (core.Decision, error) {
			h.Env().Apply(scene)
			if sync != nil {
				if err := sync(); err != nil {
					return core.Decision{}, err
				}
			}
			in, err := registry.Build(op, device, instr.OriginUnknown, nil)
			if err != nil {
				return core.Decision{}, err
			}
			dec, err := framework.Authorize(ctx, in)
			if err != nil {
				return core.Decision{}, err
			}
			if dec.Allowed {
				// The instruction executes — the attack (or legit command)
				// reaches the device.
				if err := h.Execute(in); err != nil {
					return core.Decision{}, err
				}
			}
			return dec, nil
		}

		out := roundOutcome{
			attackBlocked:   make([]bool, len(campaignAttacks)),
			legitBlocked:    make([]bool, len(campaignAttacks)),
			attackDecisions: make([]core.Decision, len(campaignAttacks)),
			legitDecisions:  make([]core.Decision, len(campaignAttacks)),
		}
		for i, a := range campaignAttacks {
			ctx, err := dataset.AttackScene(a.Model, rng)
			if err != nil {
				return roundOutcome{}, err
			}
			dec, err := fire(a.Op, a.Device, ctx)
			if err != nil {
				return roundOutcome{}, err
			}
			out.attackDecisions[i] = dec
			out.attackBlocked[i] = !dec.Allowed
			// A legitimate use of the same instruction, from a legal scene.
			legalCtx, err := dataset.LegalScene(a.Model, rng)
			if err != nil {
				return roundOutcome{}, err
			}
			if dec, err = fire(a.Op, a.Device, legalCtx); err != nil {
				return roundOutcome{}, err
			}
			out.legitDecisions[i] = dec
			out.legitBlocked[i] = !dec.Allowed
		}
		return out, nil
	})
}

// tallyCampaign folds per-round outcomes into the campaign tally.
func tallyCampaign(outcomes []roundOutcome) CampaignResult {
	res := CampaignResult{PerType: make(map[AttackType]CampaignCounts, len(campaignAttacks))}
	for _, out := range outcomes {
		for i, a := range campaignAttacks {
			c := res.PerType[a.Type]
			c.Attempts++
			if out.attackBlocked[i] {
				c.Blocked++
			}
			c.LegitAttempts++
			res.LegitAttempts++
			if out.legitBlocked[i] {
				c.LegitBlocked++
				res.LegitBlocked++
			}
			res.PerType[a.Type] = c
		}
	}
	return res
}

// RenderCampaign formats the campaign outcome.
func (s *Suite) RenderCampaign(ctx context.Context, rounds int) (string, error) {
	r, err := s.Campaign(ctx, rounds)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Attack campaign — %d rounds across six attack classes\n", rounds)
	types := make([]string, 0, len(r.PerType))
	for t := range r.PerType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		c := r.PerType[AttackType(t)]
		fmt.Fprintf(&b, "  %-24s blocked %3d/%3d (%.0f%%), false blocks %d/%d\n", t, c.Blocked, c.Attempts,
			100*float64(c.Blocked)/float64(c.Attempts), c.LegitBlocked, c.LegitAttempts)
	}
	fmt.Fprintf(&b, "  overall interception %.1f%%, legitimate commands wrongly blocked %.1f%%\n",
		100*r.BlockRate(), 100*r.FalseBlockRate())
	return b.String(), nil
}
