package eval

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestSeqCampaign is the sequence-campaign contract: the static tree alone
// allows every temporal attack (each staged scene is tree-legal — that is
// the blind spot the axis exists for), the combined judge blocks them all
// with zero unsafe allows, and benign traffic — the clean control and
// every scenario's warm-up day — stays fully available under both judges.
func TestSeqCampaign(t *testing.T) {
	s := suiteForTest(t)
	r, err := s.SeqCampaign(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != len(seqScenarios) {
		t.Fatalf("got %d scenario rows, want %d", len(r.Scenarios), len(seqScenarios))
	}
	if r.UnsafeAllows != 0 {
		t.Errorf("combined judge let %d attacks through, want 0", r.UnsafeAllows)
	}
	for _, row := range r.Scenarios {
		if row.Tree.Availability() != 1 || row.Combined.Availability() != 1 {
			t.Errorf("%s: availability tree %.3f / combined %.3f, want 1.0 on benign traffic",
				row.Scenario, row.Tree.Availability(), row.Combined.Availability())
		}
		if row.Scenario == SeqScenarioClean {
			if row.Tree.AttackAttempts != 0 || row.Combined.AttackAttempts != 0 {
				t.Errorf("clean control staged %d/%d attacks, want none",
					row.Tree.AttackAttempts, row.Combined.AttackAttempts)
			}
			continue
		}
		if row.Tree.AttackAttempts == 0 {
			t.Errorf("%s: no attacks staged", row.Scenario)
		}
		if row.Tree.AttackBlocked != 0 {
			t.Errorf("%s: tree alone blocked %d/%d — the scenario must be tree-legal",
				row.Scenario, row.Tree.AttackBlocked, row.Tree.AttackAttempts)
		}
		if row.Combined.AttackBlocked != row.Combined.AttackAttempts {
			t.Errorf("%s: combined judge blocked %d/%d, want all",
				row.Scenario, row.Combined.AttackBlocked, row.Combined.AttackAttempts)
		}
	}
}

// TestSeqCampaignDeterminism: every (scenario, round) unit is seeded from
// its index before the fan-out and merged in unit order, so the full
// result — the per-judge tallies and the folded decision digest — is
// bit-identical at any worker count.
func TestSeqCampaignDeterminism(t *testing.T) {
	s := suiteForTest(t)

	serial := *s
	serial.Config.Workers = 1
	parallel := *s
	parallel.Config.Workers = 8

	a, err := serial.SeqCampaign(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.SeqCampaign(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Errorf("digest diverges across worker counts: %s vs %s", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sequence campaign diverges:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

// TestSeqCampaignValidation rejects empty inputs.
func TestSeqCampaignValidation(t *testing.T) {
	s := suiteForTest(t)
	if _, err := s.SeqCampaign(context.Background(), 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

// TestRenderSeqCampaign: the table carries both judge rows per scenario
// and the vocabulary the docs reference.
func TestRenderSeqCampaign(t *testing.T) {
	s := suiteForTest(t)
	out, err := s.RenderSeqCampaign(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scenario", "judge", "attacks blocked", "avail", "digest",
		"clean", "automation_chain", "stale_replay", "tree+seq", "unsafe allows: 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
