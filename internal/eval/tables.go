package eval

import (
	"fmt"
	"strings"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/mlearn"
)

// TableIRow is one device-category row of Table I.
type TableIRow struct {
	Index    int
	Category instr.Category
	Title    string
	Examples string
}

// TableI reproduces the device taxonomy.
func TableI() []TableIRow {
	examples := map[instr.Category]string{
		instr.CatAlarm:           "smoke and fire alarms, flood sensor alarms, combustible gas detection alarms",
		instr.CatKitchen:         "smart rice cooker, smart dishwasher, smart oven, refrigerator",
		instr.CatEntertainment:   "TVs, stereos",
		instr.CatAirConditioning: "air conditioner, thermostat",
		instr.CatCurtain:         "curtains, blinds",
		instr.CatLighting:        "lamp",
		instr.CatWindowDoorLock:  "smart door locks, doors and windows",
		instr.CatVacuum:          "smart vacuum cleaner, smart lawn mower",
		instr.CatCamera:          "security camera",
	}
	out := make([]TableIRow, 0, 9)
	for i, c := range instr.Categories() {
		out = append(out, TableIRow{Index: i + 1, Category: c, Title: c.Title(), Examples: examples[c]})
	}
	return out
}

// RenderTableI formats Table I.
func RenderTableI() string {
	var b strings.Builder
	b.WriteString("Table I — the main equipment and classification of IoT smart home\n")
	for _, r := range TableI() {
		fmt.Fprintf(&b, "  %d. %-28s (%s)\n", r.Index, r.Title, r.Examples)
	}
	return b.String()
}

// TableII reproduces the questionnaire form (per-category threat questions,
// Table II's shape).
func TableII(c instr.Category) []string {
	return []string{
		fmt.Sprintf("[Equipment type %d] %s", int(c), c.Title()),
		"Q1: The CONTROL instructions on this type of equipment are: (high threat / low threat / non-threatening)",
		"Q2: The STATUS-ACQUISITION instructions on this type of equipment are: (high threat / low threat / non-threatening)",
	}
}

// TableIIIRow is one row of Table III: the control-instruction threat split
// for one category, plus whether it crosses the sensitive threshold.
type TableIIIRow struct {
	Category  instr.Category
	Title     string
	HighPct   float64
	LowPct    float64
	NonePct   float64
	Sensitive bool
}

// TableIII reproduces the questionnaire aggregation.
func (s *Suite) TableIII() []TableIIIRow {
	out := make([]TableIIIRow, 0, 9)
	for _, c := range instr.Categories() {
		sh := s.Survey.Control[c]
		out = append(out, TableIIIRow{
			Category: c, Title: c.Title(),
			HighPct: sh.High, LowPct: sh.Low, NonePct: sh.None,
			Sensitive: s.Survey.IsSensitive(c),
		})
	}
	return out
}

// RenderTableIII formats Table III.
func (s *Suite) RenderTableIII() string {
	var b strings.Builder
	b.WriteString("Table III — threat situation of control instructions (340 users)\n")
	fmt.Fprintf(&b, "  %-28s %8s %8s %8s  sensitive\n", "Equipment category", "High", "Low", "None")
	for _, r := range s.TableIII() {
		mark := ""
		if r.Sensitive {
			mark = "yes"
		}
		fmt.Fprintf(&b, "  %-28s %7.2f%% %7.2f%% %7.2f%%  %s\n", r.Title, r.HighPct, r.LowPct, r.NonePct, mark)
	}
	return b.String()
}

// Fig4Stats are the two headline questionnaire aggregates of Fig 4.
type Fig4Stats struct {
	ControlWorsePct float64 // paper: 85.29 %
	CoveredPct      float64 // paper: 91.18 %
	// StatusHighPct is the mean share of high-threat votes for status
	// instructions across categories — the contrast Fig 4 draws.
	ControlHighMeanPct float64
	StatusHighMeanPct  float64
}

// Fig4 reproduces the threat investigation statistics.
func (s *Suite) Fig4() Fig4Stats {
	var ctrlSum, statSum float64
	for _, c := range instr.Categories() {
		ctrlSum += s.Survey.Control[c].High
		statSum += s.Survey.Status[c].High
	}
	n := float64(len(instr.Categories()))
	return Fig4Stats{
		ControlWorsePct:    s.Survey.ControlWorsePct,
		CoveredPct:         s.Survey.CoveredPct,
		ControlHighMeanPct: ctrlSum / n,
		StatusHighMeanPct:  statSum / n,
	}
}

// RenderFig4 formats Fig 4.
func (s *Suite) RenderFig4() string {
	f := s.Fig4()
	var b strings.Builder
	b.WriteString("Fig 4 — threat investigation statistics\n")
	fmt.Fprintf(&b, "  users rating control > status threat: %.2f%% (paper: 85.29%%)\n", f.ControlWorsePct)
	fmt.Fprintf(&b, "  users fully covered by Table I list:  %.2f%% (paper: 91.18%%)\n", f.CoveredPct)
	fmt.Fprintf(&b, "  mean high-threat share, control: %.2f%% vs status: %.2f%%\n",
		f.ControlHighMeanPct, f.StatusHighMeanPct)
	return b.String()
}

// TableIV returns sample automation strategies (the corpus' Table IV-style
// entries): the n most popular.
func (s *Suite) TableIV(n int) []dataset.Strategy {
	sorted := make([]dataset.Strategy, len(s.Corpus))
	copy(sorted, s.Corpus)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].Users < sorted[j].Users; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// RenderTableIV formats Table IV.
func (s *Suite) RenderTableIV() string {
	var b strings.Builder
	b.WriteString("Table IV — customized automation strategies (most popular)\n")
	for _, st := range s.TableIV(5) {
		fmt.Fprintf(&b, "  [%6d users] %s\n", st.Users, st.RuleText)
	}
	return b.String()
}

// TableVCheck verifies the five metric equations of Table V on a concrete
// confusion matrix and returns the computed values.
type TableVCheck struct {
	Matrix    mlearn.Confusion
	Accuracy  float64
	Recall    float64
	Precision float64
	FPR       float64
	FNR       float64
}

// TableV demonstrates equations (1)–(5).
func TableV() TableVCheck {
	m := mlearn.Confusion{TP: 80, TN: 12, FP: 1, FN: 7}
	return TableVCheck{
		Matrix:    m,
		Accuracy:  m.Accuracy(),
		Recall:    m.Recall(),
		Precision: m.Precision(),
		FPR:       m.FPR(),
		FNR:       m.FNR(),
	}
}

// TableVIRow is one device-model row of Table VI.
type TableVIRow struct {
	Model    dataset.Model
	Title    string
	TrainAcc float64
	TestAcc  float64
	Recall   float64
	Prec     float64
	FPR      float64
	FNR      float64
	CVMean   float64
}

// paperTableVI holds the paper's reported Table VI values for side-by-side
// rendering.
var paperTableVI = map[dataset.Model]TableVIRow{
	dataset.ModelWindow:  {TrainAcc: 0.9901, TestAcc: 0.9385, Recall: 0.93694, Prec: 0.9905, FPR: 0.0526, FNR: 0.0631},
	dataset.ModelAircon:  {TrainAcc: 1.0, TestAcc: 0.9481, Recall: 0.9333, Prec: 1.0, FPR: 0.0, FNR: 0.0667},
	dataset.ModelLight:   {TrainAcc: 0.9075, TestAcc: 0.8923, Recall: 0.9375, Prec: 1.0, FPR: 0.0, FNR: 0.0625},
	dataset.ModelCurtain: {TrainAcc: 0.9796, TestAcc: 0.9545, Recall: 0.9412, Prec: 1.0, FPR: 0.0, FNR: 0.0588},
	dataset.ModelTV:      {TrainAcc: 1.0, TestAcc: 0.9473, Recall: 0.9444, Prec: 1.0, FPR: 0.0, FNR: 0.0556},
	dataset.ModelKitchen: {TrainAcc: 1.0, TestAcc: 0.9643, Recall: 0.9630, Prec: 1.0, FPR: 0.0, FNR: 0.0370},
}

// PaperTableVI returns the paper's reported row for a model.
func PaperTableVI(m dataset.Model) TableVIRow { return paperTableVI[m] }

// TableVI reproduces the headline evaluation from the trained memory.
func (s *Suite) TableVI() []TableVIRow {
	out := make([]TableVIRow, 0, 6)
	for _, m := range dataset.Models() {
		e, ok := s.Memory.Entry(m)
		if !ok {
			continue
		}
		r := e.Report
		out = append(out, TableVIRow{
			Model: m, Title: m.Title(),
			TrainAcc: r.TrainAccuracy, TestAcc: r.TestAccuracy,
			Recall: r.Recall, Prec: r.Precision, FPR: r.FPR, FNR: r.FNR,
			CVMean: r.CVMeanAcc,
		})
	}
	return out
}

// RenderTableVI formats Table VI with the paper's numbers alongside.
func (s *Suite) RenderTableVI() string {
	var b strings.Builder
	b.WriteString("Table VI — smart home device model effect (measured | paper)\n")
	fmt.Fprintf(&b, "  %-20s %-15s %-15s %-15s %-15s %-15s %-15s\n",
		"Equipment model", "train acc", "test acc", "recall", "precision", "false alarm", "false negative")
	for _, r := range s.TableVI() {
		p := paperTableVI[r.Model]
		cell := func(got, want float64) string { return fmt.Sprintf("%.4f|%.4f", got, want) }
		fmt.Fprintf(&b, "  %-20s %-15s %-15s %-15s %-15s %-15s %-15s\n",
			r.Title, cell(r.TrainAcc, p.TrainAcc), cell(r.TestAcc, p.TestAcc),
			cell(r.Recall, p.Recall), cell(r.Prec, p.Prec), cell(r.FPR, p.FPR), cell(r.FNR, p.FNR))
	}
	return b.String()
}

// DatasetFor returns one model's dataset under the suite's seeds (for
// ablations and benchmarks). Builds are memoized on the suite — Table VI,
// Fig 6 and the ablation sweeps all ask for the same six datasets, and each
// used to pay the full corpus expansion again. The returned dataset is
// shared: callers must not mutate it (the split/resample helpers copy).
func (s *Suite) DatasetFor(m dataset.Model) (*mlearn.Dataset, error) {
	if s.cache != nil {
		s.cache.mu.Lock()
		d, ok := s.cache.built[m]
		s.cache.mu.Unlock()
		if ok {
			return d, nil
		}
	}
	idx := 0
	for i, mm := range dataset.Models() {
		if mm == m {
			idx = i
		}
	}
	cfg := s.builder
	cfg.Seed = s.builder.Seed + int64(idx)*7919
	d, err := dataset.Build(m, s.Corpus, cfg)
	if err != nil {
		return nil, err
	}
	if s.cache != nil {
		s.cache.mu.Lock()
		// A concurrent builder may have raced us here; keep the first store
		// so every caller sees one canonical dataset. Both builds are
		// identical anyway — the build is seed-derived.
		if prev, ok := s.cache.built[m]; ok {
			d = prev
		} else {
			s.cache.built[m] = d
		}
		s.cache.mu.Unlock()
	}
	return d, nil
}

// TrainReport re-trains one model and returns its report (ablation entry
// point).
func (s *Suite) TrainReport(m dataset.Model, tcfg core.TrainConfig) (core.Report, error) {
	d, err := s.DatasetFor(m)
	if err != nil {
		return core.Report{}, err
	}
	if tcfg.Seed == 0 {
		tcfg.Seed = s.Config.TrainSeed
	}
	e, err := core.TrainModel(m, d, tcfg)
	if err != nil {
		return core.Report{}, err
	}
	return e.Report, nil
}
