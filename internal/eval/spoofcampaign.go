package eval

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/epoch"
	"iotsid/internal/instr"
	"iotsid/internal/par"
	"iotsid/internal/sensor"
	"iotsid/internal/trust"
)

// SpoofKind selects the sensor-spoofing attack family of a scenario.
type SpoofKind int

// The spoofing families of the campaign: clean (no attack — the
// availability control), replay (old timestamps re-pushed), slow drift
// (per-push creep sized to evade the step envelope), stuck-at (the last
// honest snapshot frozen and re-reported), and spike (one impossible
// jump).
const (
	SpoofClean SpoofKind = iota
	SpoofReplay
	SpoofSlowDrift
	SpoofStuckAt
	SpoofSpike
)

// String implements fmt.Stringer.
func (k SpoofKind) String() string {
	switch k {
	case SpoofClean:
		return "clean"
	case SpoofReplay:
		return "replay"
	case SpoofSlowDrift:
		return "slow_drift"
	case SpoofStuckAt:
		return "stuck_at"
	case SpoofSpike:
		return "spike"
	}
	return fmt.Sprintf("spoof(%d)", int(k))
}

// SpoofScenario describes one spoofing regime: the attack family plus
// the corrupted feature and magnitude for the numeric families.
type SpoofScenario struct {
	Name string    `json:"name"`
	Kind SpoofKind `json:"kind"`
	// Feature is the numeric feature the drift/spike families corrupt.
	Feature sensor.Feature `json:"feature,omitempty"`
	// Magnitude is the spike offset or the per-push drift rate.
	Magnitude float64 `json:"magnitude,omitempty"`
}

// DefaultSpoofScenarios is the published spoofing campaign: the clean
// control plus the four attack families of §III-A's sensor-spoofing twin
// — an attacker who owns the push channel and fabricates fresh,
// well-typed context.
func DefaultSpoofScenarios() []SpoofScenario {
	return []SpoofScenario{
		{Name: "clean", Kind: SpoofClean},
		{Name: "replay", Kind: SpoofReplay},
		{Name: "slow_drift", Kind: SpoofSlowDrift, Feature: sensor.FeatAirQuality, Magnitude: 5},
		{Name: "stuck_at", Kind: SpoofStuckAt},
		{Name: "spike", Kind: SpoofSpike, Feature: sensor.FeatAirQuality, Magnitude: 600},
	}
}

// SpoofScenarioResult tallies one spoofing scenario across its rounds.
type SpoofScenarioResult struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`
	// LegitAttempts/Allowed: sensitive instructions fired while the feed
	// was honest (the post-baseline clean phase, plus the clean
	// scenario's whole firing phase) — the availability side.
	LegitAttempts int `json:"legit_attempts"`
	LegitAllowed  int `json:"legit_allowed"`
	// SpoofAttempts/Blocked: sensitive instructions fired while the feed
	// was spoofed, and how many the IDS rejected.
	SpoofAttempts int `json:"spoof_attempts"`
	SpoofBlocked  int `json:"spoof_blocked"`
	// UnsafeAllows counts sensitive instructions ALLOWED on a spoofed
	// feed — the trust contract demands zero.
	UnsafeAllows int `json:"unsafe_allows"`
	// FailClosed counts decisions rejected explicitly by a fail-closed
	// rule (rather than by tree judgment on the fabricated context).
	FailClosed int `json:"fail_closed"`
	// TrustViolations totals the engine's violation count.
	TrustViolations uint64 `json:"trust_violations"`
	// MinFinalScore is the lowest end-of-round trust score across rounds.
	MinFinalScore float64 `json:"min_final_score"`
	// TrustDigest fingerprints every round's full score trajectory
	// (FNV-64a over the float bits, folded in round order) — the
	// bit-identity witness the determinism test compares across worker
	// counts.
	TrustDigest string `json:"trust_digest"`
}

// Availability is the fraction of honest sensitive commands served.
func (r SpoofScenarioResult) Availability() float64 {
	if r.LegitAttempts == 0 {
		return 0
	}
	return float64(r.LegitAllowed) / float64(r.LegitAttempts)
}

// Safety is the fraction of spoofed sensitive commands rejected.
func (r SpoofScenarioResult) Safety() float64 {
	if r.SpoofAttempts == 0 {
		return 1
	}
	return float64(r.SpoofBlocked) / float64(r.SpoofAttempts)
}

// spoofRoundResult is one round's tally plus its trajectory digest.
type spoofRoundResult struct {
	res        SpoofScenarioResult
	digest     uint64
	finalScore float64
}

// Campaign phase lengths. Clean establishes the behavioral baseline
// (trust.Config default BaselineObs = 8) and then measures honest
// availability; the attacker then establishes the spoofed feed before
// firing sensitive instructions against the fabricated context.
const (
	spoofCleanPushes   = 12 // baseline (8) + post-baseline honest traffic
	spoofEstablish     = 12 // corrupted pushes before the attacker fires
	spoofFiringPushes  = 6  // corrupted pushes, each followed by a sensitive instruction
	spoofPushInterval  = 5 * time.Second
	spoofLegitFireFrom = 8 // first clean push index (0-based) that also fires
)

// SpoofCampaign runs the default scenarios for the given number of
// rounds. Each (scenario, round) unit is fully self-contained — its own
// trust engine, epoch store, framework, fake clock and seeded scene —
// so the tables are bit-identical at any worker count.
func (s *Suite) SpoofCampaign(ctx context.Context, rounds int) ([]SpoofScenarioResult, error) {
	return s.SpoofCampaignScenarios(ctx, DefaultSpoofScenarios(), rounds)
}

// SpoofCampaignScenarios is SpoofCampaign over a caller-supplied
// scenario list.
func (s *Suite) SpoofCampaignScenarios(ctx context.Context, scenarios []SpoofScenario, rounds int) ([]SpoofScenarioResult, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("eval: rounds must be positive")
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("eval: no spoof scenarios")
	}
	units := len(scenarios) * rounds
	outcomes, err := par.Map(units, s.Config.Workers, func(u int) (spoofRoundResult, error) {
		return s.spoofRound(ctx, scenarios[u/rounds], int64(u))
	})
	if err != nil {
		return nil, err
	}
	out := make([]SpoofScenarioResult, len(scenarios))
	for i, sc := range scenarios {
		agg := SpoofScenarioResult{Name: sc.Name, MinFinalScore: math.Inf(1)}
		digest := uint64(14695981039346656037)
		for r := 0; r < rounds; r++ {
			o := outcomes[i*rounds+r]
			agg.Rounds += o.res.Rounds
			agg.LegitAttempts += o.res.LegitAttempts
			agg.LegitAllowed += o.res.LegitAllowed
			agg.SpoofAttempts += o.res.SpoofAttempts
			agg.SpoofBlocked += o.res.SpoofBlocked
			agg.UnsafeAllows += o.res.UnsafeAllows
			agg.FailClosed += o.res.FailClosed
			agg.TrustViolations += o.res.TrustViolations
			agg.MinFinalScore = math.Min(agg.MinFinalScore, o.finalScore)
			digest = digest*1099511628211 ^ o.digest
		}
		agg.TrustDigest = fmt.Sprintf("%016x", digest)
		out[i] = agg
	}
	return out, nil
}

// spoofRound runs one self-contained round of one scenario against a
// push-path deployment: trust engine fed by the epoch store's Observe
// hook, EpochCollector gating the framework's hot path.
func (s *Suite) spoofRound(ctx context.Context, sc SpoofScenario, unit int64) (spoofRoundResult, error) {
	detector, err := core.DefaultDetector()
	if err != nil {
		return spoofRoundResult{}, err
	}
	eng, err := trust.NewEngine(trust.Config{},
		trust.SourceConfig{Name: "feed", Required: true})
	if err != nil {
		return spoofRoundResult{}, err
	}
	now := time.Unix(1_600_000_000, 0)
	clock := func() time.Time { return now }
	st, err := epoch.NewStore(epoch.Config{
		Now: clock,
		Observe: func(src string, d sensor.Snapshot, at time.Time) {
			eng.Observe(src, d, at)
		},
	}, epoch.SourceConfig{Name: "feed", Required: true, FreshFor: time.Hour})
	if err != nil {
		return spoofRoundResult{}, err
	}
	coll, err := core.NewEpochCollector(core.EpochCollectorConfig{Now: clock, Trust: eng}, st)
	if err != nil {
		return spoofRoundResult{}, err
	}
	framework, err := core.New(core.Config{Detector: detector, Collector: coll, Memory: s.Memory})
	if err != nil {
		return spoofRoundResult{}, err
	}
	in, err := instr.BuiltinRegistry().Build("window.open", "win-1", instr.OriginUnknown, nil)
	if err != nil {
		return spoofRoundResult{}, err
	}

	// The honest stream: one legal base scene per round plus small
	// deterministic jitter, so the baseline learns a live sensor (never
	// bit-identical, small steps, stable envelope) and the scene stays
	// legal for the window tree.
	base, err := dataset.LegalScene(dataset.ModelWindow, rand.New(rand.NewSource(s.Config.Seed+909+unit)))
	if err != nil {
		return spoofRoundResult{}, err
	}
	t0 := now
	cleanSnap := func(i int) sensor.Snapshot {
		out := base.Clone()
		out.At = t0.Add(time.Duration(i) * spoofPushInterval)
		if v, ok := out.Number(sensor.FeatTempIndoor); ok {
			out.Set(sensor.FeatTempIndoor, sensor.Number(v+0.2*math.Sin(float64(i)*0.9)))
		}
		if v, ok := out.Number(sensor.FeatAirQuality); ok {
			out.Set(sensor.FeatAirQuality, sensor.Number(v+2*math.Cos(float64(i)*0.7)))
		}
		return out
	}
	// spoofSnap fabricates attack push k (0-based across establishment
	// and firing). Every family is a pure function of k, reusing the
	// chaos layer's numeric corruption modes where one feature is bent.
	spoofSnap := func(k int) sensor.Snapshot {
		i := spoofCleanPushes + k
		switch sc.Kind {
		case SpoofReplay:
			// Honest-looking values, event time running backwards from
			// the newest accepted push.
			out := cleanSnap(i)
			out.At = t0.Add(time.Duration(spoofCleanPushes-2-k) * spoofPushInterval)
			return out
		case SpoofSlowDrift:
			return core.NumericCorruption(core.CorruptDrift, sc.Feature, sc.Magnitude)(k, cleanSnap(i))
		case SpoofStuckAt:
			// The last honest snapshot, frozen, with only the stamp
			// advancing — a pinned sensor or a dead cache replayed live.
			out := cleanSnap(spoofCleanPushes - 1)
			out.At = t0.Add(time.Duration(i) * spoofPushInterval)
			return out
		case SpoofSpike:
			return core.NumericCorruption(core.CorruptSpike, sc.Feature, sc.Magnitude)(k, cleanSnap(i))
		default: // SpoofClean: the honest stream continues
			return cleanSnap(i)
		}
	}

	res := SpoofScenarioResult{Name: sc.Name, Rounds: 1}
	var digest uint64 = 14695981039346656037
	fold := func() {
		score, _ := eng.Score("feed")
		digest ^= math.Float64bits(score)
		digest *= 1099511628211
	}
	push := func(snap sensor.Snapshot) error {
		now = snap.At
		if err := st.Push("feed", snap); err != nil {
			// Replayed deltas are dropped by the store (out_of_order);
			// the trust engine has already scored them via the hook.
			if sc.Kind != SpoofReplay {
				return err
			}
		}
		fold()
		return nil
	}
	fire := func() (allowed bool, failedClosed bool, err error) {
		callCtx, cancel := context.WithTimeout(ctx, time.Second)
		dec, err := framework.Authorize(callCtx, in)
		cancel()
		if err != nil {
			return false, false, err
		}
		return dec.Allowed, strings.Contains(dec.Reason, "fail closed"), nil
	}

	// Phase 1 — honest traffic: learn the baseline, then measure
	// availability on the live legal scene.
	for i := 0; i < spoofCleanPushes; i++ {
		if err := push(cleanSnap(i)); err != nil {
			return spoofRoundResult{}, err
		}
		if i >= spoofLegitFireFrom {
			allowed, _, err := fire()
			if err != nil {
				return spoofRoundResult{}, err
			}
			res.LegitAttempts++
			if allowed {
				res.LegitAllowed++
			}
		}
	}
	// Phase 2 — the attacker establishes the spoofed feed (no commands
	// yet: manipulation precedes the instruction it enables).
	for k := 0; k < spoofEstablish; k++ {
		if err := push(spoofSnap(k)); err != nil {
			return spoofRoundResult{}, err
		}
	}
	// Phase 3 — firing: each fabricated push is followed by the
	// sensitive instruction it was built to enable. The replay family's
	// merged view is still the last honest (legal, fresh) scene, so only
	// the trust gate stands between the attacker and an allow.
	for k := 0; k < spoofFiringPushes; k++ {
		if err := push(spoofSnap(spoofEstablish + k)); err != nil {
			return spoofRoundResult{}, err
		}
		allowed, failedClosed, err := fire()
		if err != nil {
			return spoofRoundResult{}, err
		}
		if failedClosed {
			res.FailClosed++
		}
		if sc.Kind == SpoofClean {
			res.LegitAttempts++
			if allowed {
				res.LegitAllowed++
			}
			continue
		}
		res.SpoofAttempts++
		if allowed {
			res.UnsafeAllows++
		} else {
			res.SpoofBlocked++
		}
	}
	report := eng.Report()[0]
	res.TrustViolations = report.Violations
	return spoofRoundResult{res: res, digest: digest, finalScore: report.Score}, nil
}

// RenderSpoofCampaign formats the spoofing-campaign table: availability
// against safety per attack family, with the trust evidence alongside.
func (s *Suite) RenderSpoofCampaign(ctx context.Context, rounds int) (string, error) {
	results, err := s.SpoofCampaign(ctx, rounds)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Spoofing campaign — %d rounds per scenario, sensitive instructions only\n", rounds)
	fmt.Fprintf(&b, "  %-12s %6s %7s %12s %11s %10s %7s  %s\n",
		"scenario", "avail", "safety", "fail-closed", "violations", "min-score", "unsafe", "digest")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-12s %5.1f%% %6.1f%% %12d %11d %10.3f %7d  %s\n",
			r.Name, 100*r.Availability(), 100*r.Safety(),
			r.FailClosed, r.TrustViolations, r.MinFinalScore, r.UnsafeAllows, r.TrustDigest)
	}
	return b.String(), nil
}
