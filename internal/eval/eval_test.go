package eval

import (
	"context"
	"math"
	"strings"
	"testing"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/mlearn/tree"
)

// suite is shared across the test binary; building it trains all six
// models once.
var sharedSuite *Suite

func suiteForTest(t *testing.T) *Suite {
	t.Helper()
	if sharedSuite == nil {
		s, err := NewSuite(DefaultConfig())
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		sharedSuite = s
	}
	return sharedSuite
}

func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Index != i+1 || r.Title == "" || r.Examples == "" {
			t.Errorf("row %d = %+v", i, r)
		}
	}
	if !strings.Contains(RenderTableI(), "Security camera") {
		t.Error("render missing category")
	}
}

func TestTableII(t *testing.T) {
	q := TableII(instr.CatCurtain)
	if len(q) != 3 || !strings.Contains(q[0], "Curtain") {
		t.Errorf("questions = %v", q)
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	s := suiteForTest(t)
	rows := s.TableIII()
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[instr.Category]float64{
		instr.CatAlarm:           70.59,
		instr.CatKitchen:         67.65,
		instr.CatEntertainment:   26.47,
		instr.CatAirConditioning: 52.94,
		instr.CatCurtain:         55.88,
		instr.CatLighting:        64.71,
		instr.CatWindowDoorLock:  94.12,
		instr.CatVacuum:          41.18,
		instr.CatCamera:          94.12,
	}
	for _, r := range rows {
		if math.Abs(r.HighPct-want[r.Category]) > 0.01 {
			t.Errorf("%v high = %.2f, want %.2f", r.Category, r.HighPct, want[r.Category])
		}
		if r.Sensitive != (want[r.Category] > 50) {
			t.Errorf("%v sensitive = %v", r.Category, r.Sensitive)
		}
	}
	if !strings.Contains(s.RenderTableIII(), "94.12") {
		t.Error("render missing value")
	}
}

func TestFig4MatchesPaper(t *testing.T) {
	s := suiteForTest(t)
	f := s.Fig4()
	if math.Abs(f.ControlWorsePct-85.29) > 0.01 {
		t.Errorf("ControlWorsePct = %v", f.ControlWorsePct)
	}
	if math.Abs(f.CoveredPct-91.18) > 0.01 {
		t.Errorf("CoveredPct = %v", f.CoveredPct)
	}
	if f.ControlHighMeanPct <= f.StatusHighMeanPct {
		t.Error("control threat must exceed status threat (Fig 4)")
	}
	if s.RenderFig4() == "" {
		t.Error("empty render")
	}
}

func TestTableIV(t *testing.T) {
	s := suiteForTest(t)
	rows := s.TableIV(5)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Users < rows[i].Users {
			t.Error("Table IV not sorted by popularity")
		}
	}
	if !strings.Contains(s.RenderTableIV(), "WHEN") {
		t.Error("render missing rule text")
	}
}

func TestTableV(t *testing.T) {
	c := TableV()
	m := c.Matrix
	if c.Accuracy != m.Accuracy() || c.Recall != m.Recall() || c.Precision != m.Precision() ||
		c.FPR != m.FPR() || c.FNR != m.FNR() {
		t.Error("Table V values inconsistent with the confusion matrix")
	}
	if math.Abs(c.Recall+c.FNR-1) > 1e-12 {
		t.Error("equation (2)+(5) identity broken")
	}
}

// TestTableVIReproducesPaperShape is the headline check: per model, the
// measured numbers sit near the paper's (test accuracy within 5 points,
// all ≥ 0.85; kitchen among the best; FNR small; FPR ≈ 0 outside window).
func TestTableVIReproducesPaperShape(t *testing.T) {
	s := suiteForTest(t)
	rows := s.TableVI()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	var kitchenAcc, minAcc, maxAcc float64
	minAcc = 1
	for _, r := range rows {
		p := PaperTableVI(r.Model)
		if math.Abs(r.TestAcc-p.TestAcc) > 0.05 {
			t.Errorf("%s test acc = %.4f, paper %.4f (off by >0.05)", r.Model, r.TestAcc, p.TestAcc)
		}
		if r.TestAcc < 0.85 {
			t.Errorf("%s below band: %v", r.Model, r.TestAcc)
		}
		if r.FNR > 0.16 {
			t.Errorf("%s FNR = %v", r.Model, r.FNR)
		}
		if r.FPR > 0.08 {
			t.Errorf("%s FPR = %v, want ≈0 (Table VI)", r.Model, r.FPR)
		}
		if r.Model == dataset.ModelKitchen {
			kitchenAcc = r.TestAcc
		}
		if r.TestAcc < minAcc {
			minAcc = r.TestAcc
		}
		if r.TestAcc > maxAcc {
			maxAcc = r.TestAcc
		}
	}
	// Kitchen is among the paper's best models ("the eigenvalue types of
	// kitchen appliances are relatively simple").
	if kitchenAcc < 0.93 {
		t.Errorf("kitchen acc %.4f, want near the top (max %.4f)", kitchenAcc, maxAcc)
	}
	// The headline: every model ≥ 89.23 %... our light model reproduces
	// exactly that minimum; allow a small band.
	if minAcc < 0.87 {
		t.Errorf("minimum accuracy %.4f below the paper's 0.8923 headline band", minAcc)
	}
	if !strings.Contains(s.RenderTableVI(), "Kitchen appliances") {
		t.Error("render missing row")
	}
}

func TestFig5Popularity(t *testing.T) {
	s := suiteForTest(t)
	pts := s.Fig5()
	if len(pts) < 8 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Users < pts[i].Users {
			t.Error("popularity not monotone over rank")
		}
	}
	// Heavy head (Fig 5's hero strategies).
	if pts[0].Users < 10000 {
		t.Errorf("top strategy users = %d", pts[0].Users)
	}
	if s.RenderFig5() == "" {
		t.Error("empty render")
	}
}

func TestFig6WeightShape(t *testing.T) {
	s := suiteForTest(t)
	weights, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 9 {
		t.Fatalf("weights = %d, want the nine of Fig 6", len(weights))
	}
	if weights[0].Attr != "smoke" {
		t.Errorf("top feature = %s, want smoke", weights[0].Attr)
	}
	var sum, cluster float64
	discrete := map[string]bool{"smoke": true, "combustible_gas": true, "voice_command": true, "door_lock": true}
	for _, w := range weights {
		sum += w.Weight
		if discrete[w.Attr] {
			cluster += w.Weight
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	if cluster < 0.55 {
		t.Errorf("discrete cluster = %v, want dominant", cluster)
	}
	if !strings.Contains(s.RenderFig6(), "smoke") {
		t.Error("render missing feature")
	}
}

func TestFig7MatchesPaperShape(t *testing.T) {
	s := suiteForTest(t)
	rows := s.Fig7()
	total := 0
	for i, r := range rows {
		total += r.Strategies
		if i > 0 && rows[i-1].Strategies < r.Strategies {
			t.Error("Fig 7 categories not in descending order")
		}
	}
	if total != dataset.CameraWarnCount {
		t.Errorf("total warning strategies = %d, want %d", total, dataset.CameraWarnCount)
	}
	if rows[0].Trigger != dataset.WarnDoorWindowOpened {
		t.Errorf("top trigger = %v, want door/window opened", rows[0].Trigger)
	}
	if !strings.Contains(s.RenderFig7(), "319") {
		t.Error("render missing total")
	}
}

func TestBaselinesTreeCompetitive(t *testing.T) {
	s := suiteForTest(t)
	rows, err := s.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TreeAcc < 0.85 {
			t.Errorf("%s tree acc = %v", r.Model, r.TreeAcc)
		}
		// The paper picks the tree for this data: it must stay within two
		// points of whichever classifier wins on every model (rank flips
		// among near-equal classifiers are split noise).
		best := r.TreeAcc
		for _, acc := range []float64{r.KNNAcc, r.BayesAcc, r.SVMAcc} {
			if acc > best {
				best = acc
			}
		}
		if r.TreeAcc+0.02 < best {
			t.Errorf("%s: tree %.4f more than 2 points behind best %.4f", r.Model, r.TreeAcc, best)
		}
	}
	if _, err := s.RenderBaselines(); err != nil {
		t.Fatal(err)
	}
}

func TestCriterionAblation(t *testing.T) {
	s := suiteForTest(t)
	rows, err := s.CriterionAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 6 models × 3 criteria
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Gain ratio legitimately struggles on the window mix (its
		// split-info denominator disfavours the small crisp hazard
		// splits); everything else stays in the band.
		floor := 0.80
		if r.Criterion == tree.GainRatio {
			floor = 0.70
		}
		if r.TestAcc < floor {
			t.Errorf("%s/%s acc = %v", r.Model, r.Criterion, r.TestAcc)
		}
	}
}

func TestSamplingAblation(t *testing.T) {
	s := suiteForTest(t)
	rows, err := s.SamplingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TestAcc < 0.80 {
			t.Errorf("%s/%s acc = %v", r.Model, r.Sampling, r.TestAcc)
		}
	}
}

func TestScalingAblation(t *testing.T) {
	s := suiteForTest(t)
	rows, err := s.ScalingAblation(dataset.ModelWindow, []int{100, 400, 900})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More data must not make things dramatically worse.
	if rows[2].TestAcc+0.05 < rows[0].TestAcc {
		t.Errorf("accuracy degrades with data: %v -> %v", rows[0].TestAcc, rows[2].TestAcc)
	}
}

func TestTrainReportCriterionOverride(t *testing.T) {
	s := suiteForTest(t)
	r, err := s.TrainReport(dataset.ModelKitchen, core.TrainConfig{
		Tree: tree.Config{Criterion: tree.Entropy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.TestAccuracy < 0.85 {
		t.Errorf("entropy kitchen acc = %v", r.TestAccuracy)
	}
}

func TestForestComparison(t *testing.T) {
	s := suiteForTest(t)
	rows, err := s.ForestComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TreeAcc < 0.85 || r.ForestAcc < 0.85 {
			t.Errorf("%s accuracies tree=%v forest=%v", r.Model, r.TreeAcc, r.ForestAcc)
		}
		// The learned concepts are strongly rankable: AUC well above chance.
		if r.TreeAUC < 0.9 || r.ForestAUC < 0.9 {
			t.Errorf("%s AUC tree=%v forest=%v", r.Model, r.TreeAUC, r.ForestAUC)
		}
	}
	if _, err := s.RenderForestComparison(); err != nil {
		t.Fatal(err)
	}
}

func TestPreventionComparison(t *testing.T) {
	s := suiteForTest(t)
	r, err := s.PreventionComparison(200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Spoofs != 200 || r.Genuine != 200 {
		t.Fatalf("result = %+v", r)
	}
	idsRate := float64(r.IDSDetected) / float64(r.Spoofs)
	pvRate := float64(r.PVDetected) / float64(r.Spoofs)
	if idsRate < 0.7 {
		t.Errorf("IDS spoof detection = %v", idsRate)
	}
	// The paper's argument: pre-execution context judgment detects far
	// more than post-hoc event verification, and intercepts before any
	// action runs.
	if idsRate <= pvRate {
		t.Errorf("IDS %v must beat the event verifier %v", idsRate, pvRate)
	}
	if r.IDSExecutedBeforeStop != 0 {
		t.Error("IDS interception must be pre-execution")
	}
	if r.PVExecutedBeforeStop != r.Spoofs {
		t.Error("post-hoc verification runs after execution by construction")
	}
	if float64(r.IDSFalseAlarms)/float64(r.Genuine) > 0.15 {
		t.Errorf("IDS false alarms = %d/%d", r.IDSFalseAlarms, r.Genuine)
	}
	if _, err := s.RenderPrevention(50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PreventionComparison(0); err == nil {
		t.Error("want n error")
	}
}

func TestCampaign(t *testing.T) {
	s := suiteForTest(t)
	r, err := s.Campaign(context.Background(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerType) != 6 {
		t.Fatalf("attack types = %d", len(r.PerType))
	}
	for typ, c := range r.PerType {
		if c.Attempts != 40 {
			t.Errorf("%s attempts = %d", typ, c.Attempts)
		}
		rate := float64(c.Blocked) / float64(c.Attempts)
		if typ == AttackTVScare {
			// TV control is below the Table III sensitivity bar: the
			// detector never escalates it, so nothing is blocked — the
			// campaign documents that scope boundary.
			if rate != 0 {
				t.Errorf("tv_scare block rate = %v, want 0 (outside detector scope)", rate)
			}
			continue
		}
		if rate < 0.7 {
			t.Errorf("%s block rate = %v", typ, rate)
		}
	}
	if r.BlockRate() < 0.7 {
		t.Errorf("overall block rate = %v", r.BlockRate())
	}
	if r.FalseBlockRate() > 0.15 {
		t.Errorf("false block rate = %v", r.FalseBlockRate())
	}
	if _, err := s.RenderCampaign(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Campaign(context.Background(), 0); err == nil {
		t.Error("want rounds error")
	}
}

func TestTransferAcrossHomes(t *testing.T) {
	s := suiteForTest(t)
	seeds := []int64{1001, 2002, 3003}
	rows, err := s.Transfer(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*len(seeds) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Trained once, deployed to a fresh home: accuracy must hold.
		if r.Accuracy < 0.85 {
			t.Errorf("%s seed %d accuracy = %v", r.Model, r.Seed, r.Accuracy)
		}
	}
	if _, err := s.RenderTransfer(seeds); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transfer(nil); err == nil {
		t.Error("want seeds error")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.SurveyN != 340 || cfg.CorpusSeed == 0 || cfg.DatasetSeed == 0 || cfg.TrainSeed == 0 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestFig6Unavailable(t *testing.T) {
	s := &Suite{Memory: core.NewFeatureMemory()}
	if _, err := s.Fig6(); err == nil {
		t.Error("want untrained error")
	}
	if out := s.RenderFig6(); !strings.Contains(out, "unavailable") {
		t.Errorf("render = %q", out)
	}
}
