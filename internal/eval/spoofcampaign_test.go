package eval

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestSpoofCampaign is the spoofing-campaign contract: every attack
// family is fully blocked in the firing phase (zero unsafe allows, all
// of it explicit fail-closed), the trust engine records the violations
// that did it, and honest traffic — the clean control and every
// scenario's pre-attack phase — stays fully available.
func TestSpoofCampaign(t *testing.T) {
	s := suiteForTest(t)
	results, err := s.SpoofCampaign(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultSpoofScenarios()) {
		t.Fatalf("got %d scenario rows, want %d", len(results), len(DefaultSpoofScenarios()))
	}
	for _, r := range results {
		if r.UnsafeAllows != 0 {
			t.Errorf("%s: %d unsafe allows, want 0", r.Name, r.UnsafeAllows)
		}
		if r.Availability() != 1 {
			t.Errorf("%s: availability %.3f, want 1.0 on honest traffic", r.Name, r.Availability())
		}
		if r.Name == "clean" {
			if r.TrustViolations != 0 {
				t.Errorf("clean: %d trust violations, want 0", r.TrustViolations)
			}
			if r.MinFinalScore != 1 {
				t.Errorf("clean: min final score %.3f, want 1", r.MinFinalScore)
			}
			if r.SpoofAttempts != 0 {
				t.Errorf("clean: %d spoof attempts, want 0", r.SpoofAttempts)
			}
			continue
		}
		if r.SpoofAttempts == 0 || r.SpoofBlocked != r.SpoofAttempts {
			t.Errorf("%s: blocked %d of %d spoofed attempts, want all", r.Name, r.SpoofBlocked, r.SpoofAttempts)
		}
		if r.FailClosed != r.SpoofAttempts {
			t.Errorf("%s: %d fail-closed of %d spoofed attempts — attacks must be stopped by the trust gate, not tree judgment", r.Name, r.FailClosed, r.SpoofAttempts)
		}
		if r.TrustViolations == 0 {
			t.Errorf("%s: no trust violations recorded", r.Name)
		}
		if r.MinFinalScore >= 0.5 {
			t.Errorf("%s: min final score %.3f, want collapsed below threshold", r.Name, r.MinFinalScore)
		}
	}
}

// TestSpoofCampaignValidation rejects empty inputs.
func TestSpoofCampaignValidation(t *testing.T) {
	s := suiteForTest(t)
	if _, err := s.SpoofCampaign(context.Background(), 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
	if _, err := s.SpoofCampaignScenarios(context.Background(), nil, 1); err == nil {
		t.Fatal("empty scenario list accepted")
	}
}

// TestRenderSpoofCampaign: the table carries every scenario row and the
// header vocabulary the docs reference.
func TestRenderSpoofCampaign(t *testing.T) {
	s := suiteForTest(t)
	out, err := s.RenderSpoofCampaign(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scenario", "avail", "safety", "unsafe", "digest",
		"clean", "replay", "slow_drift", "stuck_at", "spike"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestSpoofCampaignDeterminism: every (scenario, round) unit is seeded
// from its index before the fan-out, and the per-round trust trajectory
// is folded into a digest — so the tables (digests included) are
// bit-identical at any worker count.
func TestSpoofCampaignDeterminism(t *testing.T) {
	s := suiteForTest(t)

	serial := *s
	serial.Config.Workers = 1
	parallel := *s
	parallel.Config.Workers = 8

	a, err := serial.SpoofCampaign(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.SpoofCampaign(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("spoof campaign diverges:\nserial:   %+v\nparallel: %+v", a, b)
	}
}
