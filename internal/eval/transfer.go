package eval

import (
	"fmt"
	"strings"

	"iotsid/internal/dataset"
	"iotsid/internal/mlearn"
	"iotsid/internal/par"
)

// TransferRow reports how one trained model performs on data generated for
// an entirely different home (fresh generator seed): the §VI deployment
// question — does a model trained on one installation's strategies
// generalise to another's?
type TransferRow struct {
	Model    dataset.Model
	Seed     int64
	Accuracy float64
	FNR      float64
	FPR      float64
}

// Transfer evaluates the suite's trained memory against freshly generated
// homes, one per seed. The model × home grid fans out; every cell builds
// its own seed-derived dataset, so rows are identical at any worker count.
func (s *Suite) Transfer(seeds []int64) ([]TransferRow, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("eval: no transfer seeds")
	}
	models := dataset.Models()
	return par.Map(len(models)*len(seeds), s.Config.Workers, func(i int) (TransferRow, error) {
		m, seed := models[i/len(seeds)], seeds[i%len(seeds)]
		entry, ok := s.Memory.Entry(m)
		if !ok {
			return TransferRow{}, fmt.Errorf("eval: model %s not trained", m)
		}
		d, err := dataset.Build(m, s.Corpus, dataset.BuildConfig{Seed: seed})
		if err != nil {
			return TransferRow{}, err
		}
		ev := mlearn.Evaluate(entry.Tree, d)
		return TransferRow{
			Model: m, Seed: seed,
			Accuracy: ev.Accuracy(), FNR: ev.FNR(), FPR: ev.FPR(),
		}, nil
	})
}

// RenderTransfer formats the transfer experiment.
func (s *Suite) RenderTransfer(seeds []int64) (string, error) {
	rows, err := s.Transfer(seeds)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Transfer — trained models evaluated on %d fresh homes\n", len(seeds))
	byModel := make(map[dataset.Model][]TransferRow)
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
	}
	for _, m := range dataset.Models() {
		var min, max, sum float64
		min = 1
		for _, r := range byModel[m] {
			sum += r.Accuracy
			if r.Accuracy < min {
				min = r.Accuracy
			}
			if r.Accuracy > max {
				max = r.Accuracy
			}
		}
		n := float64(len(byModel[m]))
		fmt.Fprintf(&b, "  %-20s accuracy mean %.4f (min %.4f, max %.4f)\n", m, sum/n, min, max)
	}
	return b.String(), nil
}
