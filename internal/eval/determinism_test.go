package eval

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// TestSuiteDeterminism builds the whole evaluation suite serially and at
// Workers=8 and demands identical Table VI rows and a byte-identical
// serialised feature memory — the end-to-end golden-equality gate over
// survey, corpus, dataset build, training and cross-validation.
func TestSuiteDeterminism(t *testing.T) {
	cfgSerial := DefaultConfig()
	cfgSerial.Workers = 1
	serial, err := NewSuite(cfgSerial)
	if err != nil {
		t.Fatal(err)
	}
	cfgPar := DefaultConfig()
	cfgPar.Workers = 8
	parallel, err := NewSuite(cfgPar)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.TableVI(), parallel.TableVI()) {
		t.Errorf("Table VI rows diverge:\nserial:   %+v\nparallel: %+v",
			serial.TableVI(), parallel.TableVI())
	}
	if serial.RenderTableVI() != parallel.RenderTableVI() {
		t.Error("rendered Table VI diverges")
	}
	var a, b bytes.Buffer
	if err := serial.Memory.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Memory.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialised feature memories diverge between worker counts")
	}
	if !reflect.DeepEqual(serial.Survey, parallel.Survey) {
		t.Error("survey results diverge (workers must not touch the survey stage)")
	}
}

// TestCampaignDeterminism: campaign rounds are self-contained units seeded
// from their round index, so the tally is identical at any worker count.
func TestCampaignDeterminism(t *testing.T) {
	s := suiteForTest(t)

	serial := *s
	serial.Config.Workers = 1
	parallel := *s
	parallel.Config.Workers = 8

	a, err := serial.Campaign(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Campaign(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("campaign diverges:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

// TestAblationDeterminism: the sweep runners produce identical row slices
// at any worker count (grid cells write index-addressed slots).
func TestAblationDeterminism(t *testing.T) {
	s := suiteForTest(t)

	serial := *s
	serial.Config.Workers = 1
	parallel := *s
	parallel.Config.Workers = 8

	sb, err := serial.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := parallel.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sb, pb) {
		t.Error("baseline rows diverge between worker counts")
	}

	st, err := serial.Transfer([]int64{1001, 2002})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := parallel.Transfer([]int64{1001, 2002})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, pt) {
		t.Error("transfer rows diverge between worker counts")
	}
}

// TestDatasetForMemoized: repeated DatasetFor calls return the one cached
// build instead of re-expanding the corpus.
func TestDatasetForMemoized(t *testing.T) {
	s := suiteForTest(t)
	for _, m := range s.Memory.Models() {
		a, err := s.DatasetFor(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.DatasetFor(m)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: DatasetFor rebuilt instead of returning the cached dataset", m)
		}
	}
}
