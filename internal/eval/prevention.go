package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"iotsid/internal/dataset"
	"iotsid/internal/peeves"
	"iotsid/internal/sensor"
)

// PreventionResult contrasts the paper's pre-execution interception against
// a Peeves-style post-hoc event verifier (§VII related work) on the
// spoofed-smoke attack: per defence, how many spoofs are detected — and,
// the paper's key argument, how many attack actions execute before the
// defence can react.
type PreventionResult struct {
	Spoofs                int
	Genuine               int
	IDSDetected           int // spoofed window.open rejected before execution
	IDSFalseAlarms        int // genuine hazard vent rejected
	IDSExecutedBeforeStop int // always 0: interception is pre-execution
	PVDetected            int // spoofs flagged by the event verifier
	PVFalseAlarms         int // genuine events flagged
	PVExecutedBeforeStop  int // every spoof has already driven the automation
}

// PreventionComparison runs the experiment: n spoofed smoke events and n
// genuine hazards, judged by both defences.
func (s *Suite) PreventionComparison(n int) (PreventionResult, error) {
	if n <= 0 {
		return PreventionResult{}, fmt.Errorf("eval: n must be positive")
	}
	rng := rand.New(rand.NewSource(s.Config.Seed + 77))

	collect := func(want bool, gen func(dataset.Model, *rand.Rand) (sensor.Snapshot, error)) ([]sensor.Snapshot, error) {
		var out []sensor.Snapshot
		for len(out) < n {
			snap, err := gen(dataset.ModelWindow, rng)
			if err != nil {
				return nil, err
			}
			if snap.Bool(sensor.FeatSmoke) == want {
				out = append(out, snap)
			}
		}
		return out, nil
	}
	spoofs, err := collect(true, dataset.AttackScene)
	if err != nil {
		return PreventionResult{}, err
	}
	genuine, err := collect(true, dataset.LegalScene)
	if err != nil {
		return PreventionResult{}, err
	}
	// Train the event verifier on held-out genuine hazards.
	training, err := collect(true, dataset.LegalScene)
	if err != nil {
		return PreventionResult{}, err
	}
	verifier, err := peeves.Train(sensor.FeatSmoke,
		[]sensor.Feature{sensor.FeatAirQuality, sensor.FeatGas, sensor.FeatTempIndoor, sensor.FeatMotion},
		training)
	if err != nil {
		return PreventionResult{}, err
	}

	res := PreventionResult{Spoofs: len(spoofs), Genuine: len(genuine)}
	for _, snap := range spoofs {
		legal, err := s.Memory.Judge(dataset.ModelWindow, snap)
		if err != nil {
			return PreventionResult{}, err
		}
		if !legal {
			res.IDSDetected++
		}
		_, ok, err := verifier.Verify(snap)
		if err != nil {
			return PreventionResult{}, err
		}
		if !ok {
			res.PVDetected++
		}
		// Post-hoc verification runs after the event has already fired the
		// "if fire, open the window" automation.
		res.PVExecutedBeforeStop++
	}
	for _, snap := range genuine {
		legal, err := s.Memory.Judge(dataset.ModelWindow, snap)
		if err != nil {
			return PreventionResult{}, err
		}
		if !legal {
			res.IDSFalseAlarms++
		}
		_, ok, err := verifier.Verify(snap)
		if err != nil {
			return PreventionResult{}, err
		}
		if !ok {
			res.PVFalseAlarms++
		}
	}
	return res, nil
}

// RenderPrevention formats the comparison.
func (s *Suite) RenderPrevention(n int) (string, error) {
	r, err := s.PreventionComparison(n)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Prevention comparison — spoofed smoke events (§VII vs this work)\n")
	fmt.Fprintf(&b, "  %-34s %18s %18s\n", "", "context IDS (ours)", "event verifier")
	pct := func(x, of int) string { return fmt.Sprintf("%d/%d (%.0f%%)", x, of, 100*float64(x)/float64(of)) }
	fmt.Fprintf(&b, "  %-34s %18s %18s\n", "spoofs detected",
		pct(r.IDSDetected, r.Spoofs), pct(r.PVDetected, r.Spoofs))
	fmt.Fprintf(&b, "  %-34s %18s %18s\n", "genuine hazards falsely flagged",
		pct(r.IDSFalseAlarms, r.Genuine), pct(r.PVFalseAlarms, r.Genuine))
	fmt.Fprintf(&b, "  %-34s %18s %18s\n", "attack actions executed first",
		pct(r.IDSExecutedBeforeStop, r.Spoofs), pct(r.PVExecutedBeforeStop, r.Spoofs))
	return b.String(), nil
}
