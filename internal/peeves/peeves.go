// Package peeves implements a physical-event-verification baseline in the
// style of Birnbach & Eberz's Peeves (the paper's closest related work,
// §VII): a claimed sensor event (say, a smoke alarm) is verified *after it
// is reported* by checking whether the correlated sensors look the way they
// do during genuine occurrences of that event. The paper's criticism — and
// the reason its own framework intercepts *before execution* — is that this
// style of detection fires only after the attack event has already driven
// the automation. The eval package quantifies that difference.
package peeves

import (
	"fmt"
	"math"

	"iotsid/internal/sensor"
)

// featureStats summarises one correlate's behaviour during genuine events.
type featureStats struct {
	Numeric bool               `json:"numeric"`
	Min     float64            `json:"min,omitempty"`
	Max     float64            `json:"max,omitempty"`
	Freq    map[string]float64 `json:"freq,omitempty"` // label/bool frequency
}

// Verifier checks claimed occurrences of one boolean event feature.
type Verifier struct {
	event      sensor.Feature
	correlates []sensor.Feature
	stats      map[sensor.Feature]featureStats
	// Margin widens the learned numeric envelope by this fraction of its
	// range on each side (default 0.05).
	Margin float64
	// MinFreq is the minimum training frequency for a discrete correlate
	// value to count as consistent (default 0.05).
	MinFreq float64
	// Threshold is the minimum fraction of consistent correlates for the
	// event to verify as genuine (default 1: every correlate must sit
	// inside its genuine envelope).
	Threshold float64
}

// Train fits a verifier for an event from snapshots of genuine occurrences
// (every snapshot must have the event feature true) using the given
// correlated features.
func Train(event sensor.Feature, correlates []sensor.Feature, genuine []sensor.Snapshot) (*Verifier, error) {
	if len(genuine) == 0 {
		return nil, fmt.Errorf("peeves: no genuine occurrences to train on")
	}
	if len(correlates) == 0 {
		return nil, fmt.Errorf("peeves: no correlates given")
	}
	for i, s := range genuine {
		if !s.Bool(event) {
			return nil, fmt.Errorf("peeves: training snapshot %d does not contain the event %q", i, event)
		}
	}
	v := &Verifier{
		event:      event,
		correlates: append([]sensor.Feature(nil), correlates...),
		stats:      make(map[sensor.Feature]featureStats, len(correlates)),
		Margin:     0.05,
		MinFreq:    0.05,
		Threshold:  1,
	}
	for _, f := range correlates {
		desc, ok := sensor.Describe(f)
		if !ok {
			return nil, fmt.Errorf("peeves: unknown correlate %q", f)
		}
		if desc.Type == sensor.TypeNumber {
			lo, hi := math.Inf(1), math.Inf(-1)
			n := 0
			for _, s := range genuine {
				if x, ok := s.Number(f); ok {
					lo = math.Min(lo, x)
					hi = math.Max(hi, x)
					n++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("peeves: correlate %q absent from training scenes", f)
			}
			v.stats[f] = featureStats{Numeric: true, Min: lo, Max: hi}
			continue
		}
		freq := make(map[string]float64)
		n := 0
		for _, s := range genuine {
			val, ok := s.Get(f)
			if !ok {
				continue
			}
			freq[val.String()]++
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("peeves: correlate %q absent from training scenes", f)
		}
		for k := range freq {
			freq[k] /= float64(n)
		}
		v.stats[f] = featureStats{Freq: freq}
	}
	return v, nil
}

// Verify scores a claimed occurrence: the fraction of correlates consistent
// with genuine behaviour, and whether it clears the threshold. The snapshot
// must actually contain the claimed event.
func (v *Verifier) Verify(snap sensor.Snapshot) (score float64, genuine bool, err error) {
	if !snap.Bool(v.event) {
		return 0, false, fmt.Errorf("peeves: snapshot does not claim event %q", v.event)
	}
	consistent, checked := 0, 0
	for _, f := range v.correlates {
		st := v.stats[f]
		val, ok := snap.Get(f)
		if !ok {
			continue // missing correlate: neither confirms nor refutes
		}
		checked++
		if st.Numeric {
			x, isNum := val.Number()
			if !isNum {
				continue
			}
			pad := (st.Max - st.Min) * v.Margin
			if x >= st.Min-pad && x <= st.Max+pad {
				consistent++
			}
			continue
		}
		if st.Freq[val.String()] >= v.MinFreq {
			consistent++
		}
	}
	if checked == 0 {
		return 0, false, fmt.Errorf("peeves: no correlates present in the snapshot")
	}
	score = float64(consistent) / float64(checked)
	return score, score >= v.Threshold, nil
}

// Event returns the verified event feature.
func (v *Verifier) Event() sensor.Feature { return v.event }
