package peeves

import (
	"math/rand"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
)

var correlates = []sensor.Feature{
	sensor.FeatAirQuality, sensor.FeatGas, sensor.FeatTempIndoor, sensor.FeatMotion,
}

// genuineSmokeScenes draws window-model legal hazard scenes with smoke set.
func genuineSmokeScenes(t *testing.T, n int, seed int64) []sensor.Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var out []sensor.Snapshot
	for len(out) < n {
		s, err := dataset.LegalScene(dataset.ModelWindow, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s.Bool(sensor.FeatSmoke) {
			out = append(out, s)
		}
	}
	return out
}

// spoofedSmokeScenes draws attack scenes where the smoke boolean is forged.
func spoofedSmokeScenes(t *testing.T, n int, seed int64) []sensor.Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var out []sensor.Snapshot
	for len(out) < n {
		s, err := dataset.AttackScene(dataset.ModelWindow, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s.Bool(sensor.FeatSmoke) {
			out = append(out, s)
		}
	}
	return out
}

func trainedVerifier(t *testing.T) *Verifier {
	t.Helper()
	v, err := Train(sensor.FeatSmoke, correlates, genuineSmokeScenes(t, 300, 1))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return v
}

func TestVerifierSeparatesGenuineFromSpoof(t *testing.T) {
	v := trainedVerifier(t)
	var genuineOK, spoofCaught int
	genuine := genuineSmokeScenes(t, 200, 2)
	for _, s := range genuine {
		_, ok, err := v.Verify(s)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			genuineOK++
		}
	}
	spoofs := spoofedSmokeScenes(t, 200, 3)
	for _, s := range spoofs {
		_, ok, err := v.Verify(s)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			spoofCaught++
		}
	}
	if rate := float64(genuineOK) / float64(len(genuine)); rate < 0.9 {
		t.Errorf("genuine acceptance = %v", rate)
	}
	// The calibrated spoofs deliberately sit inside the correlate envelope
	// most of the time — a range verifier only catches the sloppy tail.
	// (The eval package contrasts this with the IDS's ~95 % interception.)
	if rate := float64(spoofCaught) / float64(len(spoofs)); rate < 0.1 {
		t.Errorf("spoof detection = %v, want at least the sloppy tail", rate)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(sensor.FeatSmoke, correlates, nil); err == nil {
		t.Error("want empty error")
	}
	if _, err := Train(sensor.FeatSmoke, nil, genuineSmokeScenes(t, 5, 4)); err == nil {
		t.Error("want no-correlates error")
	}
	// Snapshot without the event.
	s := sensor.NewSnapshot(time.Time{})
	s.Set(sensor.FeatSmoke, sensor.Bool(false))
	if _, err := Train(sensor.FeatSmoke, correlates, []sensor.Snapshot{s}); err == nil {
		t.Error("want event-absent error")
	}
	// Unknown correlate.
	if _, err := Train(sensor.FeatSmoke, []sensor.Feature{"bogus"}, genuineSmokeScenes(t, 5, 5)); err == nil {
		t.Error("want unknown-correlate error")
	}
	// Correlate missing from all scenes.
	if _, err := Train(sensor.FeatSmoke, []sensor.Feature{sensor.FeatNoise}, genuineSmokeScenes(t, 5, 6)); err == nil {
		t.Error("want absent-correlate error")
	}
}

func TestVerifyValidation(t *testing.T) {
	v := trainedVerifier(t)
	// Claiming snapshot without the event.
	s := sensor.NewSnapshot(time.Time{})
	s.Set(sensor.FeatSmoke, sensor.Bool(false))
	if _, _, err := v.Verify(s); err == nil {
		t.Error("want no-claim error")
	}
	// Event claimed but no correlates at all.
	s = sensor.NewSnapshot(time.Time{})
	s.Set(sensor.FeatSmoke, sensor.Bool(true))
	if _, _, err := v.Verify(s); err == nil {
		t.Error("want no-correlates error")
	}
	if v.Event() != sensor.FeatSmoke {
		t.Error("Event() wrong")
	}
}

func TestVerifyScoreBounds(t *testing.T) {
	v := trainedVerifier(t)
	for _, s := range append(genuineSmokeScenes(t, 50, 7), spoofedSmokeScenes(t, 50, 8)...) {
		score, _, err := v.Verify(s)
		if err != nil {
			t.Fatal(err)
		}
		if score < 0 || score > 1 {
			t.Fatalf("score = %v", score)
		}
	}
}
