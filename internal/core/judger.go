package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// Decision is the command determiner's verdict on one instruction.
type Decision struct {
	Allowed   bool          `json:"allowed"`
	Sensitive bool          `json:"sensitive"`
	Model     dataset.Model `json:"model,omitempty"`
	Reason    string        `json:"reason"`
	// Explanation is the decision path the context tree took — which
	// sensor conditions were tested and how they resolved.
	Explanation string `json:"explanation,omitempty"`
}

// opReasons holds the interned reason strings for one opcode. The judge
// hot path returns Decisions by value; before interning, the fmt.Sprintf
// building each Reason was the last allocation on the Authorize fast path.
// Opcodes come from the instruction registry, so the table's cardinality
// is bounded; reasonCap is a backstop against a caller judging raw,
// unregistered input.
type opReasons struct {
	notSensitive string
	allowed      string
	rejected     string
}

// reasonCap bounds the interning table; past it, reasons fall back to
// fmt.Sprintf (correct, just no longer allocation-free).
const reasonCap = 4096

// ModelStore is the judger's view of wherever the trained per-device-model
// entries live. Two implementations exist: the single-home FeatureMemory
// (RWMutex over its entry map) and the fleet's copy-on-write ModelRegistry
// (one atomic load, shared by every tenant). Judge must be safe for
// concurrent use and allocation-free on the steady-state path.
type ModelStore interface {
	// Judge runs the model's compiled tree on a live snapshot: true means
	// the context matches a legal activity scene.
	Judge(m dataset.Model, ctx sensor.Snapshot) (bool, error)
	// JudgeExplain also returns the decision path the tree took.
	JudgeExplain(m dataset.Model, ctx sensor.Snapshot) (bool, string, error)
}

// Judger is the command determiner (§IV-D): sensitive instructions are
// allowed only when the trained context model confirms the live sensor
// snapshot matches a legal activity scene.
type Judger struct {
	detector *Detector
	memory   ModelStore

	// Reason interning: copy-on-write maps read via one atomic load on the
	// hot path; the mutex only serialises writers on first sight of an op
	// or category.
	mu         sync.Mutex
	reasons    atomic.Pointer[map[string]*opReasons]
	outOfScope atomic.Pointer[map[instr.Category]string]
}

// NewJudger wires the determiner over any model store — the single-home
// FeatureMemory or the fleet's shared registry.
func NewJudger(d *Detector, store ModelStore) (*Judger, error) {
	if d == nil {
		return nil, fmt.Errorf("core: judger needs a detector")
	}
	if store == nil {
		return nil, fmt.Errorf("core: judger needs a model store")
	}
	return &Judger{detector: d, memory: store}, nil
}

// reasonsFor interns the per-op reason strings on first sight and serves
// them allocation-free afterwards.
func (j *Judger) reasonsFor(op string) *opReasons {
	if m := j.reasons.Load(); m != nil {
		if r, ok := (*m)[op]; ok {
			return r
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	cur := j.reasons.Load()
	if cur != nil {
		if r, ok := (*cur)[op]; ok {
			return r
		}
	}
	r := &opReasons{
		notSensitive: fmt.Sprintf("%s is not a sensitive instruction", op),
		allowed:      fmt.Sprintf("%s allowed: sensor context matches a legal activity scene", op),
		rejected:     fmt.Sprintf("%s rejected: sensor context does not match a legal activity scene", op),
	}
	var n int
	if cur != nil {
		n = len(*cur)
	}
	if n >= reasonCap {
		return r // table full: serve without storing
	}
	next := make(map[string]*opReasons, n+1)
	if cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[op] = r
	j.reasons.Store(&next)
	return r
}

// outOfScopeReason interns the per-category out-of-scope reason.
func (j *Judger) outOfScopeReason(c instr.Category) string {
	if m := j.outOfScope.Load(); m != nil {
		if r, ok := (*m)[c]; ok {
			return r
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	cur := j.outOfScope.Load()
	if cur != nil {
		if r, ok := (*cur)[c]; ok {
			return r
		}
	}
	r := fmt.Sprintf("category %s is outside the context-model scope", c)
	var n int
	if cur != nil {
		n = len(*cur)
	}
	next := make(map[instr.Category]string, n+1)
	if cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[c] = r
	j.outOfScope.Store(&next)
	return r
}

// Judge decides one instruction against a sensor context. The steady-state
// allow path allocates nothing: reasons are interned per opcode, the
// feature vector is pooled, and the compiled tree walks a flat node slice.
//
//iot:hotpath
//iot:failclosed
func (j *Judger) Judge(in instr.Instruction, ctx sensor.Snapshot) (Decision, error) {
	if !j.detector.IsSensitive(in) {
		return Decision{
			Allowed: true,
			Reason:  j.reasonsFor(in.Op).notSensitive, //iot:allow hotcall reasons intern once per opcode; steady state is a lock-free map hit
		}, nil
	}
	m, ok := dataset.ModelForCategory(in.Category)
	if !ok {
		// Sensitive categories outside the evaluated six (alarms are
		// triggers, cameras get the warning linkage, locks guard
		// themselves — §V's Door/Alarm/Camera discussion).
		return Decision{
			Allowed:   true,
			Sensitive: true,
			Reason:    j.outOfScopeReason(in.Category), //iot:allow hotcall out-of-scope reasons intern once per category; steady state is a lock-free map hit //iot:allow failclosed the call returns the per-category interned string, never a fresh one
		}, nil
	}
	// Fast path: the compiled tree answers allow/deny without allocating.
	// Only an interception pays for the explaining walk — that is the
	// decision a user actually reads.
	legal, err := j.memory.Judge(m, ctx)
	if err != nil {
		return Decision{}, err
	}
	if !legal {
		_, explanation, err := j.memory.JudgeExplain(m, ctx)
		if err != nil {
			return Decision{}, err
		}
		return Decision{
			Allowed:     false,
			Sensitive:   true,
			Model:       m,
			Reason:      j.reasonsFor(in.Op).rejected, //iot:allow hotcall reasons intern once per opcode; steady state is a lock-free map hit
			Explanation: explanation,
		}, nil
	}
	return Decision{
		Allowed:   true,
		Sensitive: true,
		Model:     m,
		Reason:    j.reasonsFor(in.Op).allowed, //iot:allow hotcall reasons intern once per opcode; steady state is a lock-free map hit
	}, nil
}
