package core

import (
	"fmt"

	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// Decision is the command determiner's verdict on one instruction.
type Decision struct {
	Allowed   bool          `json:"allowed"`
	Sensitive bool          `json:"sensitive"`
	Model     dataset.Model `json:"model,omitempty"`
	Reason    string        `json:"reason"`
	// Explanation is the decision path the context tree took — which
	// sensor conditions were tested and how they resolved.
	Explanation string `json:"explanation,omitempty"`
}

// Judger is the command determiner (§IV-D): sensitive instructions are
// allowed only when the trained context model confirms the live sensor
// snapshot matches a legal activity scene.
type Judger struct {
	detector *Detector
	memory   *FeatureMemory
}

// NewJudger wires the determiner.
func NewJudger(d *Detector, fm *FeatureMemory) (*Judger, error) {
	if d == nil {
		return nil, fmt.Errorf("core: judger needs a detector")
	}
	if fm == nil {
		return nil, fmt.Errorf("core: judger needs a feature memory")
	}
	return &Judger{detector: d, memory: fm}, nil
}

// Judge decides one instruction against a sensor context.
func (j *Judger) Judge(in instr.Instruction, ctx sensor.Snapshot) (Decision, error) {
	if !j.detector.IsSensitive(in) {
		return Decision{
			Allowed: true,
			Reason:  fmt.Sprintf("%s is not a sensitive instruction", in.Op),
		}, nil
	}
	m, ok := dataset.ModelForCategory(in.Category)
	if !ok {
		// Sensitive categories outside the evaluated six (alarms are
		// triggers, cameras get the warning linkage, locks guard
		// themselves — §V's Door/Alarm/Camera discussion).
		return Decision{
			Allowed:   true,
			Sensitive: true,
			Reason:    fmt.Sprintf("category %s is outside the context-model scope", in.Category),
		}, nil
	}
	// Fast path: the compiled tree answers allow/deny without allocating.
	// Only an interception pays for the explaining walk — that is the
	// decision a user actually reads.
	legal, err := j.memory.Judge(m, ctx)
	if err != nil {
		return Decision{}, err
	}
	if !legal {
		_, explanation, err := j.memory.JudgeExplain(m, ctx)
		if err != nil {
			return Decision{}, err
		}
		return Decision{
			Allowed:     false,
			Sensitive:   true,
			Model:       m,
			Reason:      fmt.Sprintf("%s rejected: sensor context does not match a legal activity scene", in.Op),
			Explanation: explanation,
		}, nil
	}
	return Decision{
		Allowed:   true,
		Sensitive: true,
		Model:     m,
		Reason:    fmt.Sprintf("%s allowed: sensor context matches a legal activity scene", in.Op),
	}, nil
}
