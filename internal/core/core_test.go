package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// trainedMemory caches one trained memory across the test binary (training
// all six models takes a moment).
var trainedMemory *FeatureMemory

func memoryForTest(t *testing.T) *FeatureMemory {
	t.Helper()
	if trainedMemory != nil {
		return trainedMemory
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := Train(corpus, dataset.BuildConfig{Seed: 42}, TrainConfig{Seed: 9})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	trainedMemory = fm
	return fm
}

func detectorForTest(t *testing.T) *Detector {
	t.Helper()
	d, err := DefaultDetector()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func buildInstr(t *testing.T, op, device string) instr.Instruction {
	t.Helper()
	in, err := instr.BuiltinRegistry().Build(op, device, instr.OriginUser, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func legalCtx(t *testing.T, m dataset.Model) sensor.Snapshot {
	t.Helper()
	snap, err := dataset.LegalScene(m, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func attackCtx(t *testing.T, m dataset.Model) sensor.Snapshot {
	t.Helper()
	snap, err := dataset.AttackScene(m, rand.New(rand.NewSource(78)))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestDefaultDetectorMatchesTableIII(t *testing.T) {
	d := detectorForTest(t)
	want := map[instr.Category]bool{
		instr.CatAlarm: true, instr.CatKitchen: true, instr.CatAirConditioning: true,
		instr.CatCurtain: true, instr.CatLighting: true, instr.CatWindowDoorLock: true,
		instr.CatCamera: true,
	}
	got := d.SensitiveCategories()
	if len(got) != len(want) {
		t.Fatalf("sensitive categories = %v", got)
	}
	for _, c := range got {
		if !want[c] {
			t.Errorf("unexpected sensitive category %v", c)
		}
	}
	// Control instructions in sensitive categories are sensitive...
	if !d.IsSensitive(buildInstr(t, "window.open", "window-1")) {
		t.Error("window.open must be sensitive")
	}
	// ...status instructions never are (Fig 4)...
	if d.IsSensitive(buildInstr(t, "window.get_state", "window-1")) {
		t.Error("status instructions must not be sensitive")
	}
	// ...and TV / vacuum control stays below the 50 % bar (Table III).
	if d.IsSensitive(buildInstr(t, "tv.on", "tv-1")) {
		t.Error("tv.on must not be sensitive")
	}
	if d.IsSensitive(buildInstr(t, "vacuum.start", "vacuum-1")) {
		t.Error("vacuum.start must not be sensitive")
	}
}

func TestTrainProducesTableVIBandReports(t *testing.T) {
	fm := memoryForTest(t)
	models := fm.Models()
	if len(models) != 6 {
		t.Fatalf("trained models = %v", models)
	}
	for _, m := range models {
		e, ok := fm.Entry(m)
		if !ok {
			t.Fatalf("entry for %s missing", m)
		}
		r := e.Report
		if r.TestAccuracy < 0.85 {
			t.Errorf("%s test accuracy = %v", m, r.TestAccuracy)
		}
		// Training accuracy stays at or above test accuracy (up to split
		// noise on the smaller models).
		if r.TrainAccuracy+0.02 < r.TestAccuracy {
			t.Errorf("%s train %v well below test %v", m, r.TrainAccuracy, r.TestAccuracy)
		}
		if r.FPR > 0.08 {
			t.Errorf("%s FPR = %v", m, r.FPR)
		}
		if r.FNR > 0.16 {
			t.Errorf("%s FNR = %v", m, r.FNR)
		}
		if r.CVMeanAcc < 0.85 {
			t.Errorf("%s CV accuracy = %v", m, r.CVMeanAcc)
		}
		if len(e.Weights) != len(m.Features()) {
			t.Errorf("%s weights = %d, features = %d", m, len(e.Weights), len(m.Features()))
		}
	}
	// Window weights: smoke first (Fig 6).
	e, _ := fm.Entry(dataset.ModelWindow)
	if e.Weights[0].Attr != "smoke" {
		t.Errorf("window top weight = %s, want smoke", e.Weights[0].Attr)
	}
}

func TestMemorySaveLoadRoundTrip(t *testing.T) {
	fm := memoryForTest(t)
	var buf bytes.Buffer
	if err := fm.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Restored memory must judge identically on fresh scenes.
	rng := rand.New(rand.NewSource(123))
	for _, m := range dataset.Models() {
		for i := 0; i < 20; i++ {
			snap, err := dataset.LegalScene(m, rng)
			if err != nil {
				t.Fatal(err)
			}
			a, err := fm.Judge(m, snap)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.Judge(m, snap)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%s: restored memory diverges", m)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("want decode error")
	}
	if _, err := Load(bytes.NewBufferString(`{"entries":{"window":{}}}`)); err == nil {
		t.Error("want missing-tree error")
	}
}

func TestMemoryJudgeErrors(t *testing.T) {
	fm := NewFeatureMemory()
	if _, err := fm.Judge(dataset.ModelWindow, sensor.NewSnapshot(sensorTime())); err == nil {
		t.Error("want no-model error")
	}
	trained := memoryForTest(t)
	// Context missing required features.
	if _, err := trained.Judge(dataset.ModelWindow, sensor.NewSnapshot(sensorTime())); err == nil {
		t.Error("want featurize error")
	}
}

func TestMemoryPutValidation(t *testing.T) {
	fm := NewFeatureMemory()
	if err := fm.Put(dataset.ModelWindow, nil); err == nil {
		t.Error("want nil entry error")
	}
	if err := fm.Put(dataset.ModelWindow, &Entry{}); err == nil {
		t.Error("want nil tree error")
	}
	trained := memoryForTest(t)
	e, _ := trained.Entry(dataset.ModelWindow)
	if err := fm.Put(dataset.ModelWindow, e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := fm.Models(); len(got) != 1 || got[0] != dataset.ModelWindow {
		t.Errorf("Models = %v", got)
	}
}

func TestJudgerDecisions(t *testing.T) {
	j, err := NewJudger(detectorForTest(t), memoryForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Run("non-sensitive allowed without context model", func(t *testing.T) {
		dec, err := j.Judge(buildInstr(t, "window.get_state", "window-1"), sensor.NewSnapshot(sensorTime()))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed || dec.Sensitive {
			t.Errorf("decision = %+v", dec)
		}
	})
	t.Run("sensitive legal context allowed", func(t *testing.T) {
		dec, err := j.Judge(buildInstr(t, "window.open", "window-1"), legalCtx(t, dataset.ModelWindow))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed || !dec.Sensitive || dec.Model != dataset.ModelWindow {
			t.Errorf("decision = %+v", dec)
		}
	})
	t.Run("sensitive attack context rejected", func(t *testing.T) {
		dec, err := j.Judge(buildInstr(t, "window.open", "window-1"), attackCtx(t, dataset.ModelWindow))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Allowed {
			t.Errorf("attack context allowed: %+v", dec)
		}
	})
	t.Run("sensitive category outside model scope allowed", func(t *testing.T) {
		dec, err := j.Judge(buildInstr(t, "alarm.siren_on", "alarm-hub-1"), sensor.NewSnapshot(sensorTime()))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed || !dec.Sensitive {
			t.Errorf("decision = %+v", dec)
		}
	})
	t.Run("constructor validation", func(t *testing.T) {
		if _, err := NewJudger(nil, memoryForTest(t)); err == nil {
			t.Error("want detector error")
		}
		if _, err := NewJudger(detectorForTest(t), nil); err == nil {
			t.Error("want memory error")
		}
	})
}

func sensorTime() time.Time { return time.Time{} }

func TestJudgeExplainProvidesPath(t *testing.T) {
	fm := memoryForTest(t)
	legal, path, err := fm.JudgeExplain(dataset.ModelWindow, attackCtx(t, dataset.ModelWindow))
	if err != nil {
		t.Fatal(err)
	}
	if legal {
		t.Error("attack context judged legal")
	}
	if path == "" || !strings.Contains(path, "class 0") {
		t.Errorf("explanation = %q", path)
	}
	// The judger surfaces the same explanation on decisions.
	j, err := NewJudger(detectorForTest(t), fm)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := j.Judge(buildInstr(t, "window.open", "window-1"), attackCtx(t, dataset.ModelWindow))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Explanation == "" {
		t.Error("decision carries no explanation")
	}
}
