package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
	"iotsid/internal/seq"
)

// trainedSeqSet caches one trained sequence set across the test binary.
var trainedSeqSet *seq.Set

func seqSetForTest(t *testing.T) *seq.Set {
	t.Helper()
	if trainedSeqSet != nil {
		return trainedSeqSet
	}
	set, err := seq.Train(seq.TrainConfig{Seed: 7, Models: []dataset.Model{dataset.ModelWindow}})
	if err != nil {
		t.Fatal(err)
	}
	trainedSeqSet = set
	return set
}

func seqFrameworkForTest(t *testing.T, c Collector) *Framework {
	t.Helper()
	f, err := New(Config{
		Detector:  detectorForTest(t),
		Collector: c,
		Memory:    memoryForTest(t),
		Sequence:  seqSetForTest(t),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

// warmBenign drives a short coherent benign stream (daytime hours, so the
// static tree's voice-legal branch holds throughout) and asserts every
// decision is allowed — the sequence judge must not cost availability on
// in-profile traffic.
func warmBenign(t *testing.T, f *Framework, seed int64, n int) seq.TraceEvent {
	t.Helper()
	trace := seq.LegalTrace(rand.New(rand.NewSource(seed)), n, 8, 13)
	var last seq.TraceEvent
	for i, e := range trace {
		op, dev := "window.get_state", "window-1"
		if e.Sensitive {
			op = "window.open"
		}
		dec, err := f.Judge(buildInstr(t, op, dev), e.WindowScene())
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatalf("benign event %d (%s, hour %.2f) rejected: %s", i, op, e.Hour, dec.Reason)
		}
		last = e
	}
	return last
}

// TestFrameworkSequenceCombinedVerdict exercises the fail-closed
// combination on the single-home framework: benign in-profile traffic
// flows, a same-tick automation-chain burst is rejected by the sequence
// judge even though the static tree allows each scene, the tree's own
// rejections still stand, and non-sensitive instructions are never
// sequence-blocked.
func TestFrameworkSequenceCombinedVerdict(t *testing.T) {
	f := seqFrameworkForTest(t, staticCollector{})
	last := warmBenign(t, f, 1101, 12)
	if f.SeqAnomalies() != 0 {
		t.Fatalf("benign stream tripped %d sequence anomalies", f.SeqAnomalies())
	}

	// Automation chain: three benign status reads and a sensitive action,
	// all in the same tick. Each scene alone is tree-legal; the same-tick
	// cascade is the temporal signature the tree cannot see.
	burstAt := last.At.Add(45 * time.Second)
	burst := seq.TraceEvent{At: burstAt, Hour: last.Hour, Voice: true, Occupied: last.Occupied}
	for i := 0; i < 3; i++ {
		dec, err := f.Judge(buildInstr(t, "window.get_state", "window-1"), burst.WindowScene())
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatalf("non-sensitive chain filler %d rejected: %s", i, dec.Reason)
		}
	}
	final := seq.TraceEvent{At: burstAt, Hour: last.Hour, Voice: true, Occupied: last.Occupied, Sensitive: true}
	dec, err := f.Judge(buildInstr(t, "window.open", "window-1"), final.WindowScene())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed {
		t.Fatal("same-tick chain's sensitive action must be sequence-rejected")
	}
	if dec.Reason != reasonSeqAnomaly {
		t.Fatalf("chain rejection reason = %q, want interned sequence reason", dec.Reason)
	}
	if !dec.Sensitive {
		t.Fatal("sequence rejection must be marked sensitive")
	}
	if got := f.SeqAnomalies(); got != 1 {
		t.Fatalf("SeqAnomalies = %d, want 1", got)
	}

	// The static tree's rejections stand on their own: an attack scene is
	// refused with the tree's reason, not the sequence judge's, and a
	// rejected event never extends the history.
	dec, err = f.Judge(buildInstr(t, "window.open", "window-1"), attackCtx(t, dataset.ModelWindow))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed {
		t.Fatal("tree must reject the attack scene")
	}
	if dec.Reason == reasonSeqAnomaly {
		t.Fatal("tree rejection must not be re-attributed to the sequence judge")
	}
}

// TestFrameworkSequenceReplayRejected stages the stale_replay attack: the
// replayed scene carries an hour bucket no benign day ever jumps to, so
// the tree (which sees a voice-legal hour) allows and the sequence judge
// refuses — and keeps refusing, because rejected events are never
// admitted into the history.
func TestFrameworkSequenceReplayRejected(t *testing.T) {
	f := seqFrameworkForTest(t, staticCollector{})
	last := warmBenign(t, f, 2202, 12)

	replay := seq.TraceEvent{
		At:        last.At.Add(90 * time.Second),
		Hour:      seq.ReplayHour(last.Hour),
		Voice:     true,
		Occupied:  last.Occupied,
		Sensitive: true,
	}
	for attempt := 0; attempt < 3; attempt++ {
		dec, err := f.Judge(buildInstr(t, "window.open", "window-1"), replay.WindowScene())
		if err != nil {
			t.Fatal(err)
		}
		if dec.Allowed {
			t.Fatalf("replay attempt %d allowed (hour %.1f after %.2f)", attempt, replay.Hour, last.Hour)
		}
		if dec.Reason != reasonSeqAnomaly {
			t.Fatalf("replay attempt %d reason = %q, want sequence anomaly", attempt, dec.Reason)
		}
		replay.At = replay.At.Add(90 * time.Second)
	}
	if got := f.SeqAnomalies(); got != 3 {
		t.Fatalf("SeqAnomalies = %d, want 3 (replay must stay anomalous)", got)
	}

	// The stream recovers: the next in-profile event is allowed.
	next := seq.TraceEvent{At: replay.At, Hour: last.Hour + 0.1, Voice: true, Occupied: last.Occupied, Sensitive: true}
	dec, err := f.Judge(buildInstr(t, "window.open", "window-1"), next.WindowScene())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed {
		t.Fatalf("in-profile event after rejected replays must be allowed, got %s", dec.Reason)
	}
}

// seqAdvancingCollector republishes one fixed scene with a timestamp that
// advances a minute per collect — a steady in-profile stream for the
// allocation gate (the map is shared, the mutation is one time.Time
// field).
type seqAdvancingCollector struct{ snap sensor.Snapshot }

func (c *seqAdvancingCollector) Collect(context.Context) (sensor.Snapshot, error) {
	c.snap.At = c.snap.At.Add(time.Minute)
	return c.snap, nil
}

// TestAuthorizeSequenceSteadyStateAllocs pins the 0-alloc criterion on
// both sequence-judged steady states: the allow path (in-profile stream,
// ring write per decision) and the fail-closed path (same-tick stream,
// every sensitive decision rewritten to the interned anomaly rejection).
func TestAuthorizeSequenceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	base := seq.TraceEvent{At: time.Date(2021, 4, 1, 10, 0, 0, 0, time.UTC), Hour: 10, Voice: true, Occupied: true, Sensitive: true}
	in := buildInstr(t, "window.open", "window-1")
	ctx := context.Background()

	// Allow path: timestamps advance, symbols stay in profile.
	f := seqFrameworkForTest(t, &seqAdvancingCollector{snap: base.WindowScene()})
	for i := 0; i < 400; i++ {
		dec, err := f.Authorize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatalf("warmup %d rejected: %s", i, dec.Reason)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if dec, err := f.Authorize(ctx, in); err != nil || !dec.Allowed {
			t.Fatalf("allow path broke: %+v, %v", dec, err)
		}
	})
	if allocs != 0 {
		t.Errorf("sequence-judged allow path allocates %.1f objects/op, want 0", allocs)
	}

	// Fail-closed path: a frozen timestamp makes every follow-up same-tick
	// (instant gap) — rejected with the interned reason, nothing appended.
	f2 := seqFrameworkForTest(t, staticCollector{snap: base.WindowScene()})
	if dec, err := f2.Authorize(ctx, in); err != nil || !dec.Allowed {
		t.Fatalf("cold-start authorize: %+v, %v", dec, err)
	}
	for i := 0; i < 50; i++ {
		dec, err := f2.Authorize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Allowed || dec.Reason != reasonSeqAnomaly {
			t.Fatalf("warmup %d: want sequence rejection, got %+v", i, dec)
		}
	}
	allocs = testing.AllocsPerRun(200, func() {
		if dec, err := f2.Authorize(ctx, in); err != nil || dec.Allowed {
			t.Fatalf("fail-closed path broke: %+v, %v", dec, err)
		}
	})
	if allocs != 0 {
		t.Errorf("sequence fail-closed path allocates %.1f objects/op, want 0", allocs)
	}
}
