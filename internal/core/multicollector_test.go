package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/instr"
	"iotsid/internal/resilience"
	"iotsid/internal/sensor"
)

// flakyCollector serves a settable snapshot or error and counts calls.
type flakyCollector struct {
	mu    sync.Mutex
	snap  sensor.Snapshot
	err   error
	calls int
}

func (c *flakyCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.err != nil {
		return sensor.Snapshot{}, c.err
	}
	return c.snap, nil
}

func (c *flakyCollector) set(snap sensor.Snapshot, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snap, c.err = snap, err
}

func (c *flakyCollector) callCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func snapAt(sec int64, feat sensor.Feature, v sensor.Value) sensor.Snapshot {
	s := sensor.NewSnapshot(time.Unix(sec, 0))
	s.Set(feat, v)
	return s
}

// TestMultiCollectorMergedTimestampMaxOfSources is the regression for the
// old MultiCollector stamping the merged snapshot with time.Time{}: the
// merged timestamp must be the max of the source timestamps, wherever the
// newest source sits in declaration order.
func TestMultiCollectorMergedTimestampMaxOfSources(t *testing.T) {
	cases := [][2]int64{{1, 2}, {5, 2}}
	for _, c := range cases {
		srcs, err := AllRequired(
			staticCollector{snap: snapAt(c[0], sensor.FeatSmoke, sensor.Bool(false))},
			staticCollector{snap: snapAt(c[1], sensor.FeatMotion, sensor.Bool(true))},
		)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMultiCollector(MultiConfig{}, srcs...)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := m.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want := c[0]
		if c[1] > want {
			want = c[1]
		}
		if !snap.At.Equal(time.Unix(want, 0)) {
			t.Errorf("sources at %v: merged At = %v, want %v", c, snap.At, time.Unix(want, 0))
		}
		if snap.At.IsZero() {
			t.Error("merged snapshot stamped with the zero time")
		}
	}
}

// TestMultiCollectorOptionalStaleFallback drives the degraded-mode ladder
// for an optional source: fresh while it answers, stale (with age) while
// its last-good snapshot is within the staleness budget, missing beyond it
// — and the strict Collect path stays available throughout because the
// source is optional.
func TestMultiCollectorOptionalStaleFallback(t *testing.T) {
	now := time.Unix(10_000, 0)
	health := resilience.NewRegistry()
	main := &flakyCollector{snap: snapAt(1, sensor.FeatSmoke, sensor.Bool(false))}
	aux := &flakyCollector{snap: snapAt(2, sensor.FeatMotion, sensor.Bool(true))}
	m, err := NewMultiCollector(MultiConfig{Now: func() time.Time { return now }, Health: health},
		Source{Name: "main", Required: true, Collector: main},
		Source{Name: "aux", Staleness: 30 * time.Second, Collector: aux},
	)
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: both fresh.
	snap, prov, err := m.CollectDetailed(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prov.Degraded() {
		t.Fatalf("healthy round reported degraded: %+v", prov)
	}
	if !snap.Bool(sensor.FeatMotion) {
		t.Fatal("aux feature lost")
	}

	// Round 2: aux dies 10s later — served stale from the last-good copy.
	aux.set(sensor.Snapshot{}, errors.New("gateway down"))
	now = now.Add(10 * time.Second)
	snap, prov, err = m.CollectDetailed(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prov[1].State != SourceStale || prov[1].Age != 10*time.Second {
		t.Fatalf("aux status = %+v, want stale with age 10s", prov[1])
	}
	if prov[1].Err == "" {
		t.Error("stale status must carry the collect failure")
	}
	if !snap.Bool(sensor.FeatMotion) {
		t.Fatal("stale fallback lost the aux feature")
	}
	if !prov.Degraded() || len(prov.MissingRequired()) != 0 {
		t.Fatalf("stale optional source: degraded=%v missing=%v", prov.Degraded(), prov.MissingRequired())
	}
	// Strict path still serves: optional staleness is not an outage.
	if _, err := m.Collect(context.Background()); err != nil {
		t.Fatalf("strict Collect during bounded staleness: %v", err)
	}

	// Round 3: beyond the budget the source is missing and its feature gone.
	now = now.Add(40 * time.Second)
	snap, prov, err = m.CollectDetailed(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prov[1].State != SourceMissing {
		t.Fatalf("aux status = %+v, want missing past the budget", prov[1])
	}
	if _, ok := snap.Get(sensor.FeatMotion); ok {
		t.Fatal("expired stale data still served")
	}
	// Optional missing: the strict path still serves the required context.
	if _, err := m.Collect(context.Background()); err != nil {
		t.Fatalf("strict Collect with a missing optional source: %v", err)
	}

	// The health registry mirrors the ladder.
	for _, h := range health.Snapshot() {
		switch h.Name {
		case "main":
			if h.State != "fresh" || !h.Required {
				t.Errorf("main health = %+v", h)
			}
		case "aux":
			if h.State != "missing" || h.Required {
				t.Errorf("aux health = %+v", h)
			}
		}
	}
	if !health.Healthy() {
		t.Error("registry unhealthy although every required source is fresh")
	}

	// Recovery: aux answers again and is fresh immediately.
	aux.set(snapAt(3, sensor.FeatMotion, sensor.Bool(true)), nil)
	_, prov, err = m.CollectDetailed(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prov[1].State != SourceFresh {
		t.Fatalf("recovered aux = %+v", prov[1])
	}
}

// TestMultiCollectorRequiredMissing: a dead required source fails the
// strict Collect with the source named, while CollectDetailed still serves
// the partial context plus the provenance the framework needs to fail
// closed selectively.
func TestMultiCollectorRequiredMissing(t *testing.T) {
	health := resilience.NewRegistry()
	dead := &flakyCollector{err: errors.New("udp timeout")}
	alive := &flakyCollector{snap: snapAt(7, sensor.FeatMotion, sensor.Bool(true))}
	m, err := NewMultiCollector(MultiConfig{Health: health},
		Source{Name: "miio", Required: true, Collector: dead},
		Source{Name: "st", Collector: alive},
	)
	if err != nil {
		t.Fatal(err)
	}
	snap, prov, err := m.CollectDetailed(context.Background())
	if err != nil {
		t.Fatalf("detailed collect must serve the partial context: %v", err)
	}
	if got := prov.MissingRequired(); len(got) != 1 || got[0] != "miio" {
		t.Fatalf("MissingRequired = %v", got)
	}
	if !snap.Bool(sensor.FeatMotion) {
		t.Fatal("partial context lost the healthy source")
	}
	if _, err := m.Collect(context.Background()); err == nil || !strings.Contains(err.Error(), "miio") {
		t.Fatalf("strict Collect = %v, want the missing required source named", err)
	}
	if health.Healthy() {
		t.Error("registry healthy with a required source missing")
	}
}

// TestMultiCollectorAllSourcesFail: with no contributor at all there is no
// context to serve — even the detailed path errors.
func TestMultiCollectorAllSourcesFail(t *testing.T) {
	m, err := NewMultiCollector(MultiConfig{},
		Source{Name: "a", Required: true, Collector: &flakyCollector{err: errors.New("down")}},
		Source{Name: "b", Collector: &flakyCollector{err: errors.New("also down")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.CollectDetailed(context.Background()); err == nil {
		t.Fatal("want error when every source fails")
	}
}

// TestMultiCollectorBreakerSkipsOpenSource: after the failure threshold the
// breaker opens, collects skip the dead source entirely, the strict error
// carries the *resilience.OpenError (for Retry-After at the serving layer),
// and an elapsed open timeout admits the recovery probe.
func TestMultiCollectorBreakerSkipsOpenSource(t *testing.T) {
	now := time.Unix(50_000, 0)
	clock := func() time.Time { return now }
	src := &flakyCollector{err: errors.New("gateway unreachable")}
	br := resilience.NewBreaker(resilience.BreakerConfig{
		Name: "miio", FailureThreshold: 2, OpenTimeout: time.Minute, Now: clock,
	})
	m, err := NewMultiCollector(MultiConfig{Now: clock},
		Source{Name: "miio", Required: true, Collector: src, Breaker: br},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Collect(context.Background()); err == nil {
			t.Fatal("want failure")
		}
	}
	if br.State() != resilience.StateOpen {
		t.Fatalf("breaker = %v after threshold, want open", br.State())
	}
	// Open breaker: the source is not touched, and the error chain carries
	// the OpenError with its retry-after.
	before := src.callCount()
	_, err = m.Collect(context.Background())
	if err == nil {
		t.Fatal("want breaker-open failure")
	}
	var open *resilience.OpenError
	if !errors.As(err, &open) || open.Name != "miio" || open.RetryAfter <= 0 {
		t.Fatalf("err = %v, want *OpenError with retry-after", err)
	}
	if src.callCount() != before {
		t.Fatal("open breaker still hit the source")
	}

	// Past the open timeout a half-open probe runs; a success closes it.
	now = now.Add(2 * time.Minute)
	src.set(snapAt(9, sensor.FeatSmoke, sensor.Bool(false)), nil)
	if _, err := m.Collect(context.Background()); err != nil {
		t.Fatalf("recovery probe: %v", err)
	}
	if br.State() != resilience.StateClosed {
		t.Fatalf("breaker = %v after recovery, want closed", br.State())
	}
}

// TestMultiCollectorRetryRecoversTransient: a per-source retry policy turns
// a twice-transient failure into one successful collect.
func TestMultiCollectorRetryRecoversTransient(t *testing.T) {
	fails := 2
	var mu sync.Mutex
	calls := 0
	src := CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls <= fails {
			return sensor.Snapshot{}, fmt.Errorf("transient %d", calls)
		}
		return snapAt(3, sensor.FeatSmoke, sensor.Bool(false)), nil
	})
	retry := resilience.Policy{
		MaxAttempts: 3, Seed: 1,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil },
	}
	m, err := NewMultiCollector(MultiConfig{},
		Source{Name: "miio", Required: true, Collector: src, Retry: &retry},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Collect(context.Background()); err != nil {
		t.Fatalf("retried collect: %v", err)
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestMultiCollectorValidation covers the declaration checks.
func TestMultiCollectorValidation(t *testing.T) {
	good := Source{Name: "a", Collector: &flakyCollector{}}
	cases := [][]Source{
		{},
		{{Collector: &flakyCollector{}}},
		{{Name: "a"}},
		{good, {Name: "a", Collector: &flakyCollector{}}},
	}
	for i, srcs := range cases {
		if _, err := NewMultiCollector(MultiConfig{}, srcs...); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if _, err := AllRequired(); err == nil {
		t.Error("want empty AllRequired error")
	}
}

// TestFrameworkFailsClosedOnMissingRequiredSource: with the required vendor
// feed missing, a sensitive instruction is rejected outright (a logged
// decision, not an error) while a non-sensitive one still judges against
// the degraded context served by the optional source.
func TestFrameworkFailsClosedOnMissingRequiredSource(t *testing.T) {
	dead := &flakyCollector{err: errors.New("udp timeout")}
	alive := &flakyCollector{snap: legalCtx(t, dataset.ModelWindow)}
	m, err := NewMultiCollector(MultiConfig{},
		Source{Name: "miio", Required: true, Collector: dead},
		Source{Name: "st", Collector: alive},
	)
	if err != nil {
		t.Fatal(err)
	}
	f := frameworkForTest(t, m)

	dec, err := f.Authorize(context.Background(), buildInstr(t, "window.open", "window-1"))
	if err != nil {
		t.Fatalf("fail-closed must be a decision, not an error: %v", err)
	}
	if dec.Allowed || !dec.Sensitive {
		t.Fatalf("decision = %+v, want sensitive rejection", dec)
	}
	if !strings.Contains(dec.Reason, "fail closed") || !strings.Contains(dec.Explanation, "miio") {
		t.Errorf("reason = %q, explanation = %q", dec.Reason, dec.Explanation)
	}
	// Non-sensitive instructions still serve on the degraded context.
	dec, err = f.Authorize(context.Background(), buildInstr(t, "window.get_state", "window-1"))
	if err != nil {
		t.Fatalf("non-sensitive on degraded context: %v", err)
	}
	if !dec.Allowed {
		t.Fatalf("non-sensitive rejected: %+v", dec)
	}
	// Both decisions are in the log.
	if log := f.Log(); len(log) != 2 || log[0].Decision.Allowed {
		t.Errorf("log = %+v", log)
	}

	// The healthy path clears: once the required source answers, the same
	// sensitive instruction is judged on its merits again.
	dead.set(legalCtx(t, dataset.ModelWindow), nil)
	dec, err = f.Authorize(context.Background(), buildInstr(t, "window.open", "window-1"))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed {
		t.Fatalf("recovered legal context rejected: %+v", dec)
	}

	// With every source dead there is no context at all: that is an error.
	dead.set(sensor.Snapshot{}, errors.New("down"))
	alive.set(sensor.Snapshot{}, errors.New("down"))
	if _, err := f.Authorize(context.Background(), buildInstr(t, "window.open", "window-1")); err == nil {
		t.Fatal("want collect error with no context at all")
	}
}

// TestFrameworkBatchFailsClosedSelectively: one collect, mixed batch — the
// sensitive instructions are rejected, the rest judged.
func TestFrameworkBatchFailsClosedSelectively(t *testing.T) {
	dead := &flakyCollector{err: errors.New("udp timeout")}
	alive := &flakyCollector{snap: legalCtx(t, dataset.ModelWindow)}
	m, err := NewMultiCollector(MultiConfig{},
		Source{Name: "miio", Required: true, Collector: dead},
		Source{Name: "st", Collector: alive},
	)
	if err != nil {
		t.Fatal(err)
	}
	f := frameworkForTest(t, m)
	decs, err := f.AuthorizeBatch(context.Background(), []instr.Instruction{
		buildInstr(t, "window.open", "window-1"),
		buildInstr(t, "window.get_state", "window-1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if decs[0].Allowed || !decs[0].Sensitive {
		t.Errorf("sensitive batch entry = %+v", decs[0])
	}
	if !decs[1].Allowed {
		t.Errorf("non-sensitive batch entry = %+v", decs[1])
	}
}
