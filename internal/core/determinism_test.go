package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
)

// trainedBytes trains the full memory at the given worker count and
// returns its serialised form.
func trainedBytes(t *testing.T, workers int) []byte {
	t.Helper()
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := Train(corpus, dataset.BuildConfig{Seed: 42}, TrainConfig{Seed: 9, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainDeterminism is the tentpole's golden-equality gate: the memory
// JSON written after a serial train must be byte-identical to the memory
// JSON written after a Workers=8 train — trees, weights and reports alike.
func TestTrainDeterminism(t *testing.T) {
	serial := trainedBytes(t, 1)
	parallel := trainedBytes(t, 8)
	if !bytes.Equal(serial, parallel) {
		i := 0
		for i < len(serial) && i < len(parallel) && serial[i] == parallel[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		if hi > len(serial) {
			hi = len(serial)
		}
		t.Fatalf("serialised memories diverge at byte %d: serial ...%q...", i, serial[lo:hi])
	}
}

// fakeCollector returns a canned snapshot after recording its invocation.
type fakeCollector struct {
	feat  sensor.Feature
	value sensor.Value
	at    time.Time
	calls *atomic.Int32
	err   error
}

func (c *fakeCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	if c.calls != nil {
		c.calls.Add(1)
	}
	if c.err != nil {
		return sensor.Snapshot{}, c.err
	}
	s := sensor.NewSnapshot(c.at)
	s.Set(c.feat, c.value)
	return s, nil
}

// TestMultiCollectorDeterminism checks the concurrent fan-out keeps the
// serial contract: every source polled, later sources override earlier
// ones on shared features, and the reported error is the lowest-index
// failure.
func TestMultiCollectorDeterminism(t *testing.T) {
	var calls atomic.Int32
	at := time.Date(2021, 6, 1, 10, 0, 0, 0, time.UTC)
	srcs, err := AllRequired(
		&fakeCollector{feat: sensor.FeatSmoke, value: sensor.Bool(true), at: at, calls: &calls},
		&fakeCollector{feat: sensor.FeatMotion, value: sensor.Bool(true), at: at, calls: &calls},
		&fakeCollector{feat: sensor.FeatSmoke, value: sensor.Bool(false), at: at, calls: &calls},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiCollector(MultiConfig{}, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		calls.Store(0)
		snap, err := m.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 3 {
			t.Fatalf("polled %d sources, want 3", calls.Load())
		}
		// Index-order merge: collector 2's smoke=false wins over collector 0.
		if smoke := snap.Bool(sensor.FeatSmoke); smoke {
			t.Fatal("later source must override earlier on shared features")
		}
		if !snap.Bool(sensor.FeatMotion) {
			t.Fatal("disjoint feature lost in merge")
		}
	}
}

func TestMultiCollectorLowestIndexError(t *testing.T) {
	at := time.Now()
	errA := errors.New("vendor A down")
	errB := errors.New("vendor B down")
	srcs, err := AllRequired(
		&fakeCollector{feat: sensor.FeatSmoke, value: sensor.Bool(true), at: at},
		&fakeCollector{err: errA},
		&fakeCollector{err: errB},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiCollector(MultiConfig{}, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		_, err := m.Collect(context.Background())
		if err == nil || !errors.Is(err, errA) {
			t.Fatalf("trial %d: err = %v, want the lowest-index failure %v", trial, err, errA)
		}
		// Both failed required sources are named, in declaration order.
		if !strings.Contains(err.Error(), "src1, src2") {
			t.Fatalf("err = %q, want both missing sources named in order", err)
		}
	}
}
