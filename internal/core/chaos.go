package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"iotsid/internal/sensor"
)

// FaultKind is one injected collector fault.
type FaultKind int

// The fault classes of the campaign: none (pass through), error (the
// collect fails immediately — a 5xx or RPC error), hang (the collect
// blocks until the caller's deadline fires — a dropped or delayed
// datagram), and byzantine (the collect succeeds but the snapshot is
// corrupted — a spoofing or bit-flipping source).
const (
	FaultNone FaultKind = iota
	FaultError
	FaultHang
	FaultByzantine
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultHang:
		return "hang"
	case FaultByzantine:
		return "byzantine"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// ChaosCollector wraps a Collector with a deterministic fault plan — the
// fault-injection harness of the resilience campaign. The i-th Collect
// call suffers Plan(i); the plan is a pure function of the call index, so
// a campaign round replays bit-identically regardless of scheduling.
type ChaosCollector struct {
	// Inner is the healthy collector underneath.
	Inner Collector
	// Plan maps the 0-based call index to the fault it suffers; nil means
	// no faults.
	Plan func(call int) FaultKind
	// Corrupt transforms the snapshot for byzantine faults; nil flips every
	// boolean feature (a plausible-but-wrong context).
	Corrupt func(s sensor.Snapshot) sensor.Snapshot
	// CorruptAt, when non-nil, takes precedence over Corrupt and
	// additionally receives the 0-based call index, so stateful-looking
	// corruptions (slow drift, stuck-at) stay pure functions of the call
	// sequence — see NumericCorruption.
	CorruptAt func(call int, s sensor.Snapshot) sensor.Snapshot

	calls atomic.Int64
}

var _ Collector = (*ChaosCollector)(nil)

// Calls returns how many Collect calls the chaos layer has seen.
func (c *ChaosCollector) Calls() int { return int(c.calls.Load()) }

// Collect implements Collector.
func (c *ChaosCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	if c.Inner == nil {
		return sensor.Snapshot{}, fmt.Errorf("core: chaos collector has no inner collector")
	}
	call := int(c.calls.Add(1) - 1)
	fault := FaultNone
	if c.Plan != nil {
		fault = c.Plan(call)
	}
	switch fault {
	case FaultError:
		return sensor.Snapshot{}, fmt.Errorf("core: chaos: injected error on call %d", call)
	case FaultHang:
		// A dropped packet: nothing ever arrives, only the caller's
		// deadline releases the collect.
		<-ctx.Done()
		return sensor.Snapshot{}, fmt.Errorf("core: chaos: hang on call %d: %w", call, ctx.Err())
	case FaultByzantine:
		snap, err := c.Inner.Collect(ctx)
		if err != nil {
			return sensor.Snapshot{}, err
		}
		if c.CorruptAt != nil {
			return c.CorruptAt(call, snap), nil
		}
		if c.Corrupt != nil {
			return c.Corrupt(snap), nil
		}
		return flipBools(snap), nil
	default:
		return c.Inner.Collect(ctx)
	}
}

// flipBools is the default byzantine corruption: every boolean feature is
// inverted, yielding a type-valid but physically inconsistent context.
func flipBools(s sensor.Snapshot) sensor.Snapshot {
	out := s.Clone()
	for f, v := range out.Values {
		if b, ok := v.Bool(); ok {
			out.Values[f] = sensor.Bool(!b)
		}
	}
	return out
}

// CorruptionKind selects a numeric corruption mode for byzantine faults —
// the sensor-spoofing attack families the trust engine must catch.
type CorruptionKind int

// The numeric corruption modes: spike slams the feature far outside any
// honest envelope in one report, stuck freezes it at a seeded constant
// (a dead or pinned sensor), and drift creeps it away a little more per
// call — small enough to pass step checks, cumulative enough to walk
// the context wherever the attacker wants.
const (
	CorruptSpike CorruptionKind = iota + 1
	CorruptStuck
	CorruptDrift
)

// String implements fmt.Stringer.
func (k CorruptionKind) String() string {
	switch k {
	case CorruptSpike:
		return "spike"
	case CorruptStuck:
		return "stuck"
	case CorruptDrift:
		return "drift"
	}
	return fmt.Sprintf("corruption(%d)", int(k))
}

// NumericCorruption builds a CorruptAt transform targeting one numeric
// feature. The magnitude parameter is the spike offset, the stuck-at
// constant, or the per-call drift rate respectively. The transform is a
// pure function of (call, snapshot): replaying a call index replays the
// corruption bit-identically, so chaos campaigns stay deterministic at
// any worker count. Snapshots without the feature pass through untouched.
func NumericCorruption(kind CorruptionKind, feature sensor.Feature, magnitude float64) func(call int, s sensor.Snapshot) sensor.Snapshot {
	return func(call int, s sensor.Snapshot) sensor.Snapshot {
		v, ok := s.Number(feature)
		if !ok {
			return s
		}
		out := s.Clone()
		switch kind {
		case CorruptSpike:
			out.Set(feature, sensor.Number(v+magnitude))
		case CorruptStuck:
			out.Set(feature, sensor.Number(magnitude))
		case CorruptDrift:
			out.Set(feature, sensor.Number(v+magnitude*float64(call+1)))
		}
		return out
	}
}

// ChaosPlan builds a seeded stochastic fault plan: call i draws its fault
// from the weighted classes using a generator seeded by seed+i, so the
// plan is a pure function of (seed, index) — deterministic under any call
// interleaving of the surrounding campaign.
func ChaosPlan(seed int64, pError, pHang, pByzantine float64) func(call int) FaultKind {
	return func(call int) FaultKind {
		u := rand.New(rand.NewSource(seed + int64(call))).Float64()
		switch {
		case u < pError:
			return FaultError
		case u < pError+pHang:
			return FaultHang
		case u < pError+pHang+pByzantine:
			return FaultByzantine
		default:
			return FaultNone
		}
	}
}
