package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/epoch"
	"iotsid/internal/obs"
	"iotsid/internal/sensor"
	"iotsid/internal/trust"
)

// trustEngine builds a single-source engine tuned so two invariant
// violations cross the threshold.
func trustEngine(t *testing.T, source string) *trust.Engine {
	t.Helper()
	e, err := trust.NewEngine(trust.Config{Threshold: 0.5, Decay: 0.7},
		trust.SourceConfig{Name: source, Required: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// corruptScene returns the legal scene with a physically impossible aqi —
// guaranteed to fire the aqi_range invariant on every observation.
func corruptScene(t *testing.T, at time.Time) sensor.Snapshot {
	t.Helper()
	s := legalCtx(t, dataset.ModelWindow).Clone()
	s.At = at
	s.Set(sensor.FeatAirQuality, sensor.Number(-1))
	return s
}

// TestNewEpochCollectorTrustValidation: the engine must declare every
// store source.
func TestNewEpochCollectorTrustValidation(t *testing.T) {
	clk := newEpochClock()
	st, err := epoch.NewStore(epoch.Config{Now: clk.Now}, epoch.SourceConfig{Name: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	eng := trustEngine(t, "other")
	if _, err := NewEpochCollector(EpochCollectorConfig{Now: clk.Now, Trust: eng}, st); err == nil {
		t.Fatal("engine missing the store source accepted")
	}
}

// TestAuthorizeEpochFailsClosedOnLowTrust is the tentpole's end-to-end
// gate on the push path: a spoofed source keeps pushing perfectly fresh
// deltas, the trust engine collapses its score via the store's Observe
// hook, and sensitive instructions fail closed with the interned
// low-trust reason while non-sensitive ones still judge.
func TestAuthorizeEpochFailsClosedOnLowTrust(t *testing.T) {
	clk := newEpochClock()
	eng := trustEngine(t, "sim")
	st, err := epoch.NewStore(epoch.Config{Now: clk.Now, Observe: func(src string, d sensor.Snapshot, at time.Time) {
		eng.Observe(src, d, at)
	}}, epoch.SourceConfig{Name: "sim", Required: true, FreshFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewEpochCollector(EpochCollectorConfig{Now: clk.Now, Trust: eng}, st)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{Detector: detectorForTest(t), Collector: c, Memory: memoryForTest(t)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	winOpen := buildInstr(t, "window.open", "window-1")

	pushScene(t, st, "sim", legalCtx(t, dataset.ModelWindow), clk.Now())
	dec, err := f.Authorize(ctx, winOpen)
	if err != nil || !dec.Allowed {
		t.Fatalf("clean push: dec=%+v err=%v", dec, err)
	}

	// The attacker establishes the spoofed feed: fresh, well-typed, and
	// physically impossible. Two violations cross the threshold.
	for i := 0; i < 2; i++ {
		clk.Advance(time.Second)
		if err := st.Push("sim", corruptScene(t, clk.Now())); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Trusted("sim") {
		t.Fatal("spoofed feed still trusted")
	}

	dec, err = f.Authorize(ctx, winOpen)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed {
		t.Fatal("sensitive instruction allowed on low-trust required source")
	}
	if dec.Reason != reasonLowTrust {
		t.Fatalf("reason = %q, want the interned low-trust reason", dec.Reason)
	}

	// Non-sensitive instructions still judge, with the source flagged in
	// provenance.
	tvOn := buildInstr(t, "tv.on", "tv-1")
	dec, err = f.Authorize(ctx, tvOn)
	if err != nil || !dec.Allowed {
		t.Fatalf("non-sensitive under low trust: dec=%+v err=%v", dec, err)
	}
	_, prov, err := c.CollectDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(prov) != 1 || !prov[0].LowTrust || prov[0].State != SourceFresh {
		t.Fatalf("provenance = %+v, want fresh+low-trust", prov)
	}
	if prov[0].Trust >= 0.5 {
		t.Fatalf("provenance trust = %v, want below threshold", prov[0].Trust)
	}
	if !prov.Degraded() {
		t.Fatal("low-trust provenance not reported degraded")
	}
	if lt := prov.LowTrustRequired(); len(lt) != 1 || lt[0] != "sim" {
		t.Fatalf("LowTrustRequired = %v", lt)
	}
}

// mutableCollector serves whatever snapshot the test last stored.
type mutableCollector struct {
	mu   sync.Mutex
	snap sensor.Snapshot
}

func (m *mutableCollector) set(s sensor.Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap = s
}

func (m *mutableCollector) Collect(context.Context) (sensor.Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snap, nil
}

// TestMultiCollectorTrustProvenance: the poll path reports every collect
// into the engine and stamps provenance with scores; a collapsed source
// fails sensitive instructions closed through the same framework rule.
func TestMultiCollectorTrustProvenance(t *testing.T) {
	eng := trustEngine(t, "gw")
	clk := newEpochClock()
	src := &mutableCollector{}
	clean := legalCtx(t, dataset.ModelWindow).Clone()
	clean.At = clk.Now()
	src.set(clean)
	mc, err := NewMultiCollector(MultiConfig{Now: clk.Now, Trust: eng},
		Source{Name: "gw", Collector: src, Required: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, prov, err := mc.CollectDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if prov[0].LowTrust || prov[0].Trust != 1 {
		t.Fatalf("clean collect provenance = %+v", prov[0])
	}
	for i := 0; i < 2; i++ {
		clk.Advance(time.Second)
		src.set(corruptScene(t, clk.Now()))
		if _, _, err := mc.CollectDetailed(ctx); err != nil {
			t.Fatal(err)
		}
	}
	_, prov, err = mc.CollectDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !prov[0].LowTrust || prov[0].State != SourceFresh {
		t.Fatalf("spoofed collect provenance = %+v, want fresh+low-trust", prov[0])
	}

	f, err := New(Config{Detector: detectorForTest(t), Collector: mc, Memory: memoryForTest(t)})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f.Authorize(ctx, buildInstr(t, "window.open", "window-1"))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed || dec.Reason != reasonLowTrust {
		t.Fatalf("sensitive on spoofed poll source: %+v", dec)
	}
}

// TestNewMultiCollectorTrustValidation: the engine must declare every
// polled source.
func TestNewMultiCollectorTrustValidation(t *testing.T) {
	eng := trustEngine(t, "other")
	_, err := NewMultiCollector(MultiConfig{Trust: eng},
		Source{Name: "gw", Collector: &mutableCollector{}, Required: true})
	if err == nil {
		t.Fatal("engine missing the polled source accepted")
	}
}

// TestAuthorizeEpochTrustSteadyStateAllocs extends the epoch alloc gate
// with the trust check armed on the hot path: still zero allocations.
func TestAuthorizeEpochTrustSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	reg := obs.NewRegistry()
	clk := newEpochClock()
	eng, err := trust.NewEngine(trust.Config{Metrics: reg}, trust.SourceConfig{Name: "sim", Required: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := epoch.NewStore(epoch.Config{Now: clk.Now, Metrics: reg, Observe: func(src string, d sensor.Snapshot, at time.Time) {
		eng.Observe(src, d, at)
	}},
		epoch.SourceConfig{Name: "sim", Required: true, FreshFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewEpochCollector(EpochCollectorConfig{Now: clk.Now, Trust: eng}, st)
	if err != nil {
		t.Fatal(err)
	}
	pushScene(t, st, "sim", legalCtx(t, dataset.ModelWindow), clk.Now())
	f, err := New(Config{Detector: detectorForTest(t), Collector: c, Memory: memoryForTest(t), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstr(t, "window.open", "window-1")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := f.Authorize(ctx, in); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dec, err := f.Authorize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatal("expected allow on a legal scene")
		}
	})
	if allocs != 0 {
		t.Errorf("epoch Authorize with trust check allocates %.1f objects/op, want 0", allocs)
	}
}
