package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"iotsid/internal/obs"
)

// decisionLog is a fixed-capacity, sharded ring buffer of authorisation
// records. Hot-path appends hash the device ID to a shard and take only
// that shard's lock, so concurrent Authorize calls on different devices
// never serialise on one mutex — and the log cannot grow without bound the
// way the old append-only slice did. A global atomic sequence number gives
// reads a total order across shards.
type decisionLog struct {
	shards []logShard
	mask   uint32
	seq    atomic.Uint64

	// appends/evictions surface the ring's behaviour to the metrics layer:
	// the ring never blocks and never grows, so the only way it "drops" is
	// by overwriting its oldest entry — before these counters that loss was
	// silent. Both are nil (no-op) on an uninstrumented framework.
	appends   *obs.Counter
	evictions *obs.Counter
}

type logShard struct {
	mu   sync.Mutex
	buf  []LogEntry // ring storage, len == cap
	next uint64     // entries ever appended to this shard
	_    [24]byte   // pad to keep neighbouring shard locks off one cache line
}

// defaultLogCapacity bounds the framework log when the caller does not
// choose a size.
const defaultLogCapacity = 4096

// logShardCount must be a power of two for the mask trick.
const logShardCount = 8

func newDecisionLog(capacity int) *decisionLog {
	if capacity <= 0 {
		capacity = defaultLogCapacity
	}
	perShard := (capacity + logShardCount - 1) / logShardCount
	l := &decisionLog{shards: make([]logShard, logShardCount), mask: logShardCount - 1}
	for i := range l.shards {
		l.shards[i].buf = make([]LogEntry, perShard)
	}
	return l
}

// fnv32a hashes the device ID without allocating.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// instrument attaches append/eviction counters (pre-registered by the
// framework; nil leaves the log uninstrumented).
func (l *decisionLog) instrument(appends, evictions *obs.Counter) {
	l.appends = appends
	l.evictions = evictions
}

// append records one entry, stamping it with the next global sequence
// number. Only the owning shard's lock is taken.
func (l *decisionLog) append(e LogEntry) {
	e.Seq = l.seq.Add(1)
	s := &l.shards[fnv32a(e.DeviceID)&l.mask]
	s.mu.Lock()
	evicted := s.next >= uint64(len(s.buf))
	s.buf[s.next%uint64(len(s.buf))] = e
	s.next++
	s.mu.Unlock()
	l.appends.Inc()
	if evicted {
		l.evictions.Inc()
	}
}

// snapshot copies every retained entry, ordered oldest → newest by global
// sequence. The copy is bounded by the ring capacity regardless of how many
// decisions the framework has ever made.
func (l *decisionLog) snapshot() []LogEntry {
	out := make([]LogEntry, 0, len(l.shards)*len(l.shards[0].buf))
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n := s.next
		retained := uint64(len(s.buf))
		if n < retained {
			retained = n
		}
		for j := n - retained; j < n; j++ {
			out = append(out, s.buf[j%uint64(len(s.buf))])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// recent returns the newest n retained entries, oldest → newest.
func (l *decisionLog) recent(n int) []LogEntry {
	all := l.snapshot()
	if n < 0 {
		n = 0
	}
	if n > len(all) {
		n = len(all)
	}
	return all[len(all)-n:]
}
