package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"iotsid/internal/obs"
	"iotsid/internal/sensor"
)

// CollectorFunc adapts a plain collect function to the Collector interface
// (the cloud's ContextSource, closures in tests, …).
type CollectorFunc func(ctx context.Context) (sensor.Snapshot, error)

// Collect implements Collector.
func (f CollectorFunc) Collect(ctx context.Context) (sensor.Snapshot, error) { return f(ctx) }

// CachedCollector amortises context collection across concurrent and
// closely-spaced Authorize calls. A snapshot younger than TTL is served
// straight from memory; when the cache is stale, exactly one caller runs
// the inner Collect while every other concurrent caller waits for and
// shares that result (single-flight). This turns N collector round trips
// within one freshness window into one, which is where the §VI overhead
// experiment shows the real latency lives on the network paths.
//
// Waiters honour their own context: a caller with a deadline is released
// when it fires even if the in-flight collect is hung, so one dead gateway
// cannot wedge every concurrent authorisation. Errors are never cached —
// the next caller retries the inner collector. With ServeStaleOnError set,
// a failed collect falls back to the previous good snapshot while it is
// younger than the configured budget.
//
// Callers share the cached snapshot's value map and must treat it as
// read-only — the same contract the framework's judging paths already
// follow.
type CachedCollector struct {
	inner Collector
	ttl   time.Duration

	mu       sync.Mutex
	now      func() time.Time
	snap     sensor.Snapshot
	fetched  time.Time
	valid    bool
	inflight *collectCall
	maxStale time.Duration // serve-stale-on-error budget; 0 disables

	metrics *cacheMetrics // nil = uninstrumented
}

// collectCall is one in-progress inner Collect shared by waiters.
type collectCall struct {
	done chan struct{}
	snap sensor.Snapshot
	err  error
}

// NewCachedCollector wraps inner with a TTL cache. A non-positive TTL still
// deduplicates concurrent calls but never serves a stale snapshot.
func NewCachedCollector(inner Collector, ttl time.Duration) (*CachedCollector, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: cached collector needs an inner collector")
	}
	return &CachedCollector{inner: inner, ttl: ttl, now: time.Now}, nil
}

// Instrument registers the cache's result counters (hit, miss, coalesced,
// stale, error) with reg and starts counting. Call before serving traffic;
// a nil registry is a no-op.
func (c *CachedCollector) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = newCacheMetrics(reg)
}

// SetClock overrides the freshness clock (tests).
func (c *CachedCollector) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// ServeStaleOnError lets a failed inner collect fall back to the previous
// good snapshot while it is at most maxStale old — bounded staleness
// instead of an outage. A non-positive budget disables the fallback.
func (c *CachedCollector) ServeStaleOnError(maxStale time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if maxStale < 0 {
		maxStale = 0
	}
	c.maxStale = maxStale
}

// Invalidate drops the cached snapshot so the next Collect hits the inner
// collector (e.g. after an actuation known to change the world).
func (c *CachedCollector) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.valid = false
}

var _ Collector = (*CachedCollector)(nil)

// Collect implements Collector.
func (c *CachedCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	c.mu.Lock()
	if c.valid && c.now().Sub(c.fetched) < c.ttl {
		snap := c.snap
		m := c.metrics
		c.mu.Unlock()
		m.hit()
		return snap, nil
	}
	if call := c.inflight; call != nil {
		// Someone is already collecting: wait for their result, but never
		// past this caller's own deadline — a hung leader must not wedge
		// the waiters.
		m := c.metrics
		c.mu.Unlock()
		m.coalesce()
		select {
		case <-call.done:
			return call.snap, call.err
		case <-ctx.Done():
			return sensor.Snapshot{}, fmt.Errorf("core: waiting for in-flight collect: %w", ctx.Err())
		}
	}
	call := &collectCall{done: make(chan struct{})}
	c.inflight = call
	c.mu.Unlock()

	call.snap, call.err = c.inner.Collect(ctx)

	c.mu.Lock()
	c.inflight = nil
	m := c.metrics
	m.miss()
	if call.err == nil {
		c.snap = call.snap
		c.fetched = c.now()
		c.valid = true
	} else if c.valid && c.maxStale > 0 && c.now().Sub(c.fetched) <= c.maxStale {
		// Serve-stale-on-error: the error itself stays uncached, but this
		// call (and its waiters) ride on the bounded-stale snapshot.
		call.snap, call.err = c.snap, nil
		m.staleServe()
	} else if call.err != nil {
		m.err()
	}
	c.mu.Unlock()
	close(call.done)
	return call.snap, call.err
}
