package core

import (
	"fmt"
	"sync"
	"testing"
)

func logEntryFor(device string, op string) LogEntry {
	return LogEntry{Op: op, DeviceID: device, Decision: Decision{Allowed: true, Reason: op}}
}

func TestDecisionLogOrdersAcrossShards(t *testing.T) {
	l := newDecisionLog(128)
	for i := 0; i < 50; i++ {
		l.append(logEntryFor(fmt.Sprintf("dev-%d", i), fmt.Sprintf("op-%d", i)))
	}
	got := l.snapshot()
	if len(got) != 50 {
		t.Fatalf("snapshot = %d entries", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d — not globally ordered", i, e.Seq)
		}
		if e.Op != fmt.Sprintf("op-%d", i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestDecisionLogStaysBounded(t *testing.T) {
	const capacity = 64
	l := newDecisionLog(capacity)
	// Hammer a single device so one shard overflows many times.
	for i := 0; i < 10*capacity; i++ {
		l.append(logEntryFor("dev-hot", fmt.Sprintf("op-%d", i)))
	}
	got := l.snapshot()
	perShard := (capacity + logShardCount - 1) / logShardCount
	if len(got) != perShard {
		t.Fatalf("single-device log retained %d entries, want shard cap %d", len(got), perShard)
	}
	// The retained entries are the newest ones, in order.
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("retained entries not contiguous: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
	if got[len(got)-1].Op != fmt.Sprintf("op-%d", 10*capacity-1) {
		t.Fatalf("newest retained = %+v", got[len(got)-1])
	}
}

func TestDecisionLogRecent(t *testing.T) {
	l := newDecisionLog(128)
	for i := 0; i < 30; i++ {
		l.append(logEntryFor(fmt.Sprintf("dev-%d", i%7), fmt.Sprintf("op-%d", i)))
	}
	recent := l.recent(5)
	if len(recent) != 5 {
		t.Fatalf("recent(5) = %d entries", len(recent))
	}
	for i, e := range recent {
		if e.Op != fmt.Sprintf("op-%d", 25+i) {
			t.Fatalf("recent[%d] = %+v", i, e)
		}
	}
	if got := l.recent(1000); len(got) != 30 {
		t.Fatalf("recent(1000) = %d", len(got))
	}
	if got := l.recent(-1); len(got) != 0 {
		t.Fatalf("recent(-1) = %d", len(got))
	}
}

func TestDecisionLogConcurrentAppend(t *testing.T) {
	l := newDecisionLog(4096)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.append(logEntryFor(fmt.Sprintf("dev-%d-%d", g, i), "op"))
			}
		}(g)
	}
	// Concurrent readers must see a consistent, ordered view.
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < 50; i++ {
				snap := l.snapshot()
				for j := 1; j < len(snap); j++ {
					if snap[j].Seq <= snap[j-1].Seq {
						t.Error("snapshot out of order")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	rwg.Wait()
	if got := l.snapshot(); len(got) != goroutines*perG {
		t.Fatalf("retained %d of %d appends", len(got), goroutines*perG)
	}
}
