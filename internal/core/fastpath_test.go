package core

import (
	"bytes"
	"math/rand"
	"testing"

	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
)

// randomSnapshot draws a snapshot over the model's feature vocabulary:
// booleans fair-coin, labels uniform over their domain, numerics over a
// range wide enough to straddle every threshold the trees learned.
func randomSnapshot(t *testing.T, m dataset.Model, rng *rand.Rand) sensor.Snapshot {
	t.Helper()
	snap := sensor.NewSnapshot(sensorTime())
	for _, f := range m.Features() {
		d, ok := sensor.Describe(f)
		if !ok {
			t.Fatalf("feature %q not in vocabulary", f)
		}
		switch d.Type {
		case sensor.TypeBool:
			snap.Set(f, sensor.Bool(rng.Intn(2) == 1))
		case sensor.TypeLabel:
			snap.Set(f, sensor.Label(d.Labels[rng.Intn(len(d.Labels))]))
		default:
			snap.Set(f, sensor.Number(rng.Float64()*10040-40))
		}
	}
	return snap
}

// TestCompiledAgreesWithTreeOnAllModels is the fast-path equivalence
// property: for every trained model, the compiled tree, the explaining
// tree, and the pooled Judge path all decide identically on random, legal
// and attack snapshots (>10k probes across the six models).
func TestCompiledAgreesWithTreeOnAllModels(t *testing.T) {
	fm := memoryForTest(t)
	rng := rand.New(rand.NewSource(2025))
	const perModel = 2000
	for _, m := range fm.Models() {
		e, ok := fm.Entry(m)
		if !ok {
			t.Fatalf("no entry for %s", m)
		}
		c := e.Compiled()
		if c == nil {
			t.Fatalf("%s: entry has no compiled tree", m)
		}
		if c.Width() != m.FeatureWidth() {
			t.Fatalf("%s: compiled width %d, model width %d", m, c.Width(), m.FeatureWidth())
		}
		for i := 0; i < perModel; i++ {
			var snap sensor.Snapshot
			var err error
			switch i % 3 {
			case 0:
				snap, err = dataset.LegalScene(m, rng)
			case 1:
				snap, err = dataset.AttackScene(m, rng)
			default:
				snap = randomSnapshot(t, m, rng)
			}
			if err != nil {
				t.Fatal(err)
			}
			x, err := m.Featurize(snap)
			if err != nil {
				t.Fatal(err)
			}
			want := e.Tree.Predict(x)
			if got := c.Predict(x); got != want {
				t.Fatalf("%s probe %d: compiled = %d, tree = %d (x = %v)", m, i, got, want, x)
			}
			legal, err := fm.Judge(m, snap)
			if err != nil {
				t.Fatal(err)
			}
			if legal != (want == 1) {
				t.Fatalf("%s probe %d: Judge = %v, tree class = %d", m, i, legal, want)
			}
		}
	}
}

// TestCompileSaveLoadCompileRoundTrip proves compile → JSON save → load →
// compile preserves every decision.
func TestCompileSaveLoadCompileRoundTrip(t *testing.T) {
	fm := memoryForTest(t)
	var buf bytes.Buffer
	if err := fm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	for _, m := range fm.Models() {
		orig, _ := fm.Entry(m)
		loaded, ok := back.Entry(m)
		if !ok {
			t.Fatalf("loaded memory missing %s", m)
		}
		lc := loaded.Compiled()
		if lc == nil {
			t.Fatalf("%s: loaded entry not compiled", m)
		}
		if lc.NodeCount() != orig.Compiled().NodeCount() {
			t.Fatalf("%s: node count diverged after round trip", m)
		}
		for i := 0; i < 500; i++ {
			snap := randomSnapshot(t, m, rng)
			x, err := m.Featurize(snap)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := lc.Predict(x), orig.Compiled().Predict(x); got != want {
				t.Fatalf("%s probe %d: reloaded = %d, original = %d", m, i, got, want)
			}
		}
	}
}

// TestJudgeSteadyStateAllocs asserts the 0 allocs/op acceptance criterion
// in-process (the benchmark records the number; this keeps it from
// regressing silently in plain `go test`).
func TestJudgeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	fm := memoryForTest(t)
	snap := legalCtx(t, dataset.ModelWindow)
	// Warm the buffer pool.
	if _, err := fm.Judge(dataset.ModelWindow, snap); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := fm.Judge(dataset.ModelWindow, snap); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Judge steady state allocates %.1f objects/op, want 0", allocs)
	}
}
