package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"iotsid/internal/epoch"
	"iotsid/internal/sensor"
	"iotsid/internal/trust"
)

// Sentinel causes for push-path provenance: unlike the polling collector
// there is no per-collect error to carry, only the fact that pushes never
// arrived or stopped arriving.
var (
	errNeverPushed = errors.New("core: source has never pushed")
	errPushExpired = errors.New("core: source's last push is beyond its staleness budget")
)

// EpochCollectorConfig tunes an EpochCollector.
type EpochCollectorConfig struct {
	// Now is the read-side staleness clock; defaults to time.Now. It must
	// tick the same timeline as the store's publish clock — the collector
	// differences its reads against the store's per-source push stamps.
	Now func() time.Time
	// Trust, when non-nil, gates the steady path on every store source
	// being trusted (one atomic flag load per source — the hot path stays
	// allocation-free) and stamps degraded provenance with per-source
	// scores. The engine must declare every store source by name; feed it
	// observations via the store's Observe hook (epoch.Config.Observe).
	Trust *trust.Engine
}

// EpochCollector adapts an epoch.Store to the framework's collector
// contract: the push-based twin of MultiCollector. Where MultiCollector
// polls every vendor on each decision, EpochCollector dereferences the
// store's published view and derives provenance from per-source push ages
// — the same fresh/stale/missing vocabulary, the same fail-closed rules,
// with the collection round trip moved entirely off the decision path.
//
// Steady state (every source pushed within its FreshFor budget) returns
// the published snapshot and a shared pre-built all-fresh provenance:
// zero allocations, no locks, one atomic load. Only when some source has
// gone quiet does the read fall into the degraded path, which builds a
// real provenance describing who went stale or missing.
//
// One semantic difference from the polling collector is inherent to the
// architecture: values a now-missing source pushed earlier remain merged
// in the snapshot (a store cannot un-merge them). The provenance still
// reports the source missing, so sensitive instructions fail closed
// exactly as before; only non-sensitive judgments may see the lingering
// values.
type EpochCollector struct {
	store   *epoch.Store
	sources []epoch.SourceConfig
	now     func() time.Time
	trust   *trust.Engine
	// trustIdx[i] is source i's index in the trust engine.
	trustIdx []int

	// freshFor mirrors sources[i].FreshFor for a tight hot-path loop.
	freshFor []time.Duration
	// freshProv is the shared all-fresh provenance returned on the steady
	// path. Built once; callers must treat provenance as read-only (the
	// same contract MultiCollector's callers already honour).
	freshProv Provenance
}

var _ DetailedCollector = (*EpochCollector)(nil)

// NewEpochCollector builds a collector reading the given store. The
// source set and budgets come from the store's own declarations.
func NewEpochCollector(cfg EpochCollectorConfig, store *epoch.Store) (*EpochCollector, error) {
	if store == nil {
		return nil, fmt.Errorf("core: epoch collector needs a store")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	sources := store.Sources()
	c := &EpochCollector{
		store:     store,
		sources:   sources,
		now:       cfg.Now,
		freshFor:  make([]time.Duration, len(sources)),
		freshProv: make(Provenance, len(sources)),
	}
	for i, s := range sources {
		c.freshFor[i] = s.FreshFor
		c.freshProv[i] = SourceStatus{Name: s.Name, Required: s.Required, State: SourceFresh}
	}
	if cfg.Trust != nil {
		c.trust = cfg.Trust
		c.trustIdx = make([]int, len(sources))
		for i, s := range sources {
			idx, ok := cfg.Trust.Index(s.Name)
			if !ok {
				return nil, fmt.Errorf("core: trust engine does not declare epoch source %q", s.Name)
			}
			c.trustIdx[i] = idx
			// The shared steady-path provenance reports full trust: the
			// steady path is only taken while every source's trusted flag
			// holds, and exact scores are a degraded-path detail.
			c.freshProv[i].Trust = 1
		}
	}
	return c, nil
}

// Epoch returns the epoch of the view a read would serve right now.
func (c *EpochCollector) Epoch() uint64 { return c.store.Epoch() }

// CollectDetailed implements DetailedCollector. The steady-state path is
// one atomic view load plus a per-source age check against precomputed
// budgets — no allocation, no lock, no I/O.
//
//iot:hotpath
//iot:failclosed
func (c *EpochCollector) CollectDetailed(ctx context.Context) (sensor.Snapshot, Provenance, error) {
	if err := ctx.Err(); err != nil {
		return sensor.Snapshot{}, nil, err
	}
	v := c.store.View()
	now := c.now()
	for i := range c.freshFor {
		if p := v.PushedAt[i]; p.IsZero() || now.Sub(p) > c.freshFor[i] {
			return c.collectDegraded(v, now) //iot:allow hotcall degraded path, never taken steady-state; the AllocsPerRun gate proves the fresh path is 0-alloc
		}
	}
	if c.trust != nil {
		for _, ti := range c.trustIdx {
			if !c.trust.TrustedIdx(ti) {
				return c.collectDegraded(v, now) //iot:allow hotcall degraded path, never taken steady-state; the AllocsPerRun gate proves the fresh path is 0-alloc
			}
		}
	}
	return v.Snap, c.freshProv, nil
}

// collectDegraded is the cold path: at least one source has no
// fresh-budget push, so build a real provenance from push ages. It may
// allocate freely — by definition it only runs when the context is
// already degraded.
//
//iot:failclosed
func (c *EpochCollector) collectDegraded(v *epoch.View, now time.Time) (sensor.Snapshot, Provenance, error) {
	prov := make(Provenance, len(c.sources))
	served := 0
	for i, src := range c.sources {
		status := SourceStatus{Name: src.Name, Required: src.Required}
		switch p := v.PushedAt[i]; {
		case p.IsZero():
			status.State = SourceMissing
			status.Err = errNeverPushed.Error()
			status.cause = errNeverPushed
		default:
			age := now.Sub(p)
			switch {
			case age <= src.FreshFor:
				status.State = SourceFresh
				served++
			case src.Staleness > 0 && age <= src.Staleness:
				// Served from the merged view within budget: the push-world
				// equivalent of MultiCollector's last-good fallback.
				status.State = SourceStale
				status.Age = age
				served++
			default:
				status.State = SourceMissing
				status.Age = age
				status.Err = errPushExpired.Error()
				status.cause = errPushExpired
			}
		}
		if c.trust != nil {
			status.Trust = c.trust.ScoreIdx(c.trustIdx[i])
			status.LowTrust = !c.trust.TrustedIdx(c.trustIdx[i])
		}
		prov[i] = status
	}
	if served == 0 {
		return sensor.Snapshot{}, prov, fmt.Errorf("core: no live source in epoch store (epoch %d)", v.Epoch)
	}
	return v.Snap, prov, nil
}

// Collect implements Collector: the strict entry point, mirroring
// MultiCollector.Collect. A degraded-but-serviceable view is returned; a
// required source without a live push is an error.
func (c *EpochCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	snap, prov, err := c.CollectDetailed(ctx)
	if err != nil {
		return sensor.Snapshot{}, err
	}
	if missing := prov.MissingRequired(); len(missing) > 0 {
		cause := firstError(prov, missing)
		return sensor.Snapshot{}, fmt.Errorf("core: required source(s) %s have no live push: %w",
			strings.Join(missing, ", "), cause)
	}
	return snap, nil
}
