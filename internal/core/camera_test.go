package core

import (
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
)

func camSnap(vals map[sensor.Feature]bool, at time.Time) sensor.Snapshot {
	s := sensor.NewSnapshot(at)
	for f, v := range vals {
		s.Set(f, sensor.Bool(v))
	}
	return s
}

func TestCameraWarnerRisingEdges(t *testing.T) {
	w := NewCameraWarner()
	t0 := time.Date(2021, 4, 1, 3, 0, 0, 0, time.UTC)
	base := map[sensor.Feature]bool{
		sensor.FeatDoorOpen: false, sensor.FeatWindowOpen: false,
		sensor.FeatSmoke: false, sensor.FeatWaterLeak: false,
		sensor.FeatGas: false, sensor.FeatMotion: false,
		sensor.FeatOccupancy: false,
	}
	// First observation only primes the warner.
	if got := w.Observe(camSnap(base, t0)); len(got) != 0 {
		t.Fatalf("unprimed warner warned: %v", got)
	}

	// Door opens + motion while away: two warnings.
	next := map[sensor.Feature]bool{}
	for k, v := range base {
		next[k] = v
	}
	next[sensor.FeatDoorOpen] = true
	next[sensor.FeatMotion] = true
	got := w.Observe(camSnap(next, t0.Add(time.Minute)))
	if len(got) != 2 {
		t.Fatalf("warnings = %v", got)
	}
	triggers := map[dataset.WarnTrigger]bool{}
	for _, warning := range got {
		triggers[warning.Trigger] = true
		if warning.String() == "" {
			t.Error("empty warning string")
		}
	}
	if !triggers[dataset.WarnDoorWindowOpened] || !triggers[dataset.WarnMotion] {
		t.Errorf("triggers = %v", triggers)
	}

	// Level-high does not refire.
	if got := w.Observe(camSnap(next, t0.Add(2*time.Minute))); len(got) != 0 {
		t.Fatalf("level refire: %v", got)
	}

	// Motion while home does not warn.
	home := map[sensor.Feature]bool{}
	for k, v := range base {
		home[k] = v
	}
	home[sensor.FeatOccupancy] = true
	w.Observe(camSnap(home, t0.Add(3*time.Minute)))
	home[sensor.FeatMotion] = true
	if got := w.Observe(camSnap(home, t0.Add(4*time.Minute))); len(got) != 0 {
		t.Fatalf("motion-at-home warned: %v", got)
	}

	// Hazard sensors warn.
	hazard := map[sensor.Feature]bool{}
	for k, v := range base {
		hazard[k] = v
	}
	w.Observe(camSnap(hazard, t0.Add(5*time.Minute)))
	hazard[sensor.FeatSmoke] = true
	hazard[sensor.FeatWaterLeak] = true
	hazard[sensor.FeatGas] = true
	hazard[sensor.FeatWindowOpen] = true
	got = w.Observe(camSnap(hazard, t0.Add(6*time.Minute)))
	if len(got) != 4 {
		t.Fatalf("hazard warnings = %v", got)
	}

	stats := w.Stats()
	if stats[dataset.WarnDoorWindowOpened] != 2 || stats[dataset.WarnSmokeFire] != 1 ||
		stats[dataset.WarnWaterLeak] != 1 || stats[dataset.WarnGas] != 1 || stats[dataset.WarnMotion] != 1 {
		t.Errorf("stats = %v", stats)
	}
	if len(w.History()) != 6 {
		t.Errorf("history = %d", len(w.History()))
	}
}

func TestSamplingString(t *testing.T) {
	if SampleRandomOversample.String() != "random_oversample" ||
		SampleSMOTE.String() != "smote" || SampleNone.String() != "none" {
		t.Error("sampling names wrong")
	}
	if Sampling(9).String() != "sampling(9)" {
		t.Error("unknown sampling name")
	}
}

func TestTrainModelSamplingVariants(t *testing.T) {
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Build(dataset.ModelKitchen, corpus, dataset.BuildConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Sampling{SampleRandomOversample, SampleSMOTE, SampleNone} {
		e, err := TrainModel(dataset.ModelKitchen, d, TrainConfig{Seed: 4, Sampling: s})
		if err != nil {
			t.Fatalf("sampling %s: %v", s, err)
		}
		if e.Report.TestAccuracy < 0.85 {
			t.Errorf("sampling %s accuracy = %v", s, e.Report.TestAccuracy)
		}
	}
	if _, err := TrainModel(dataset.ModelKitchen, d, TrainConfig{Seed: 4, Sampling: Sampling(99)}); err == nil {
		t.Error("want sampling error")
	}
}
