package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iotsid/internal/sensor"
)

// countingCollector counts Collect calls and can stall them.
type countingCollector struct {
	calls atomic.Int64
	block chan struct{} // when non-nil, Collect waits on it (or ctx)
	err   error
}

func (c *countingCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	c.calls.Add(1)
	if c.block != nil {
		select {
		case <-c.block:
		case <-ctx.Done():
			return sensor.Snapshot{}, ctx.Err()
		}
	}
	if c.err != nil {
		return sensor.Snapshot{}, c.err
	}
	snap := sensor.NewSnapshot(time.Unix(1, 0))
	snap.Set(sensor.FeatSmoke, sensor.Bool(false))
	return snap, nil
}

func TestCachedCollectorServesWithinTTL(t *testing.T) {
	inner := &countingCollector{}
	cc, err := NewCachedCollector(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	cc.SetClock(func() time.Time { return now })

	for i := 0; i < 10; i++ {
		snap, err := cc.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := snap.Get(sensor.FeatSmoke); !ok {
			t.Fatal("cached snapshot lost values")
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("inner collected %d times within TTL, want 1", got)
	}

	// Past the TTL the cache refreshes once.
	now = now.Add(2 * time.Minute)
	if _, err := cc.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Fatalf("inner collected %d times after expiry, want 2", got)
	}

	// Invalidate forces a refresh inside the TTL.
	cc.Invalidate()
	if _, err := cc.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 3 {
		t.Fatalf("inner collected %d times after Invalidate, want 3", got)
	}
}

func TestCachedCollectorSingleFlight(t *testing.T) {
	inner := &countingCollector{block: make(chan struct{})}
	cc, err := NewCachedCollector(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 16
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cc.Collect(context.Background())
			errs <- err
		}()
	}
	// Let every goroutine either start the collect or queue behind it.
	for inner.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(inner.block)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("%d concurrent Collects hit the inner collector %d times, want 1", waiters, got)
	}
}

// TestCachedCollectorWaitersHonourDeadline: a hung in-flight collect must
// not wedge waiters that carry their own deadline — each is released with
// its context's error while the leader keeps waiting.
func TestCachedCollectorWaitersHonourDeadline(t *testing.T) {
	inner := &countingCollector{block: make(chan struct{})}
	cc, err := NewCachedCollector(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	leaderDone := make(chan error, 1)
	go func() {
		_, err := cc.Collect(context.Background())
		leaderDone <- err
	}()
	for inner.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// The waiter has a deadline; the leader is hung.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := cc.Collect(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter error = %v, want deadline exceeded", err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("released waiter re-entered the collector: %d calls", got)
	}

	// Release the leader; the machinery is not wedged.
	close(inner.block)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if _, err := cc.Collect(context.Background()); err != nil {
		t.Fatalf("post-release Collect: %v", err)
	}
}

func TestCachedCollectorDoesNotCacheErrors(t *testing.T) {
	inner := &countingCollector{err: fmt.Errorf("sensors down")}
	cc, err := NewCachedCollector(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cc.Collect(context.Background()); err == nil {
			t.Fatal("want propagated error")
		}
	}
	if got := inner.calls.Load(); got != 3 {
		t.Fatalf("errors were cached: %d inner calls, want 3", got)
	}
	// Recovery: the next success is cached.
	inner.err = nil
	if _, err := cc.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 4 {
		t.Fatalf("recovered snapshot not cached: %d inner calls, want 4", got)
	}
}

// TestCachedCollectorServeStaleOnError: with the knob set, a failed
// refresh serves the previous good snapshot while it is within the
// budget, and the error itself stays uncached (the next call retries).
func TestCachedCollectorServeStaleOnError(t *testing.T) {
	inner := &countingCollector{}
	cc, err := NewCachedCollector(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	cc.SetClock(func() time.Time { return now })
	cc.ServeStaleOnError(10 * time.Minute)

	if _, err := cc.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Upstream dies; within the stale budget the old snapshot is served.
	inner.err = fmt.Errorf("gateway down")
	now = now.Add(5 * time.Minute) // past TTL, within stale budget
	snap, err := cc.Collect(context.Background())
	if err != nil {
		t.Fatalf("stale serve: %v", err)
	}
	if _, ok := snap.Get(sensor.FeatSmoke); !ok {
		t.Fatal("stale snapshot lost values")
	}
	if got := inner.calls.Load(); got != 2 {
		t.Fatalf("inner calls = %d, want 2 (the failed refresh was attempted)", got)
	}
	// Each call keeps retrying the inner collector — the error is not
	// cached even though the stale snapshot papers over it.
	if _, err := cc.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 3 {
		t.Fatalf("inner calls = %d, want 3", got)
	}

	// Beyond the budget the outage surfaces.
	now = now.Add(10 * time.Minute)
	if _, err := cc.Collect(context.Background()); err == nil {
		t.Fatal("stale budget exhausted: want the upstream error")
	}

	// Recovery resets the budget window.
	inner.err = nil
	if _, err := cc.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Invalidate drops the snapshot entirely: no stale serve afterwards.
	inner.err = fmt.Errorf("gateway down again")
	cc.Invalidate()
	if _, err := cc.Collect(context.Background()); err == nil {
		t.Fatal("invalidated cache must not serve stale")
	}
	// A disabled knob never serves stale.
	cc.ServeStaleOnError(0)
	inner.err = nil
	if _, err := cc.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	inner.err = fmt.Errorf("down")
	now = now.Add(2 * time.Minute)
	if _, err := cc.Collect(context.Background()); err == nil {
		t.Fatal("knob disabled: want the upstream error")
	}
}

func TestCachedCollectorValidation(t *testing.T) {
	if _, err := NewCachedCollector(nil, time.Second); err == nil {
		t.Error("want nil-inner error")
	}
}
