package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iotsid/internal/sensor"
)

// countingCollector counts Collect calls and can stall them.
type countingCollector struct {
	calls atomic.Int64
	block chan struct{} // when non-nil, Collect waits on it
	err   error
}

func (c *countingCollector) Collect() (sensor.Snapshot, error) {
	c.calls.Add(1)
	if c.block != nil {
		<-c.block
	}
	if c.err != nil {
		return sensor.Snapshot{}, c.err
	}
	snap := sensor.NewSnapshot(time.Unix(1, 0))
	snap.Set(sensor.FeatSmoke, sensor.Bool(false))
	return snap, nil
}

func TestCachedCollectorServesWithinTTL(t *testing.T) {
	inner := &countingCollector{}
	cc, err := NewCachedCollector(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	cc.SetClock(func() time.Time { return now })

	for i := 0; i < 10; i++ {
		snap, err := cc.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := snap.Get(sensor.FeatSmoke); !ok {
			t.Fatal("cached snapshot lost values")
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("inner collected %d times within TTL, want 1", got)
	}

	// Past the TTL the cache refreshes once.
	now = now.Add(2 * time.Minute)
	if _, err := cc.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Fatalf("inner collected %d times after expiry, want 2", got)
	}

	// Invalidate forces a refresh inside the TTL.
	cc.Invalidate()
	if _, err := cc.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 3 {
		t.Fatalf("inner collected %d times after Invalidate, want 3", got)
	}
}

func TestCachedCollectorSingleFlight(t *testing.T) {
	inner := &countingCollector{block: make(chan struct{})}
	cc, err := NewCachedCollector(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 16
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cc.Collect()
			errs <- err
		}()
	}
	// Let every goroutine either start the collect or queue behind it.
	for inner.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(inner.block)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("%d concurrent Collects hit the inner collector %d times, want 1", waiters, got)
	}
}

func TestCachedCollectorDoesNotCacheErrors(t *testing.T) {
	inner := &countingCollector{err: fmt.Errorf("sensors down")}
	cc, err := NewCachedCollector(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cc.Collect(); err == nil {
			t.Fatal("want propagated error")
		}
	}
	if got := inner.calls.Load(); got != 3 {
		t.Fatalf("errors were cached: %d inner calls, want 3", got)
	}
	// Recovery: the next success is cached.
	inner.err = nil
	if _, err := cc.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 4 {
		t.Fatalf("recovered snapshot not cached: %d inner calls, want 4", got)
	}
}

func TestCachedCollectorValidation(t *testing.T) {
	if _, err := NewCachedCollector(nil, time.Second); err == nil {
		t.Error("want nil-inner error")
	}
}
