// Package core implements the paper's contribution: the contextual attack
// detection framework of §IV, with its four components — the sensitive
// command detector, the (multi-vendor) sensor data collector, the command
// sensor context feature memory, and the command determiner — plus the
// camera warning linkage of §V / Fig 7.
package core

import (
	"fmt"
	"math/rand"

	"iotsid/internal/instr"
	"iotsid/internal/survey"
)

// Detector is the sensitive command detector (§IV-A): it makes the first
// judgment on every instruction — is it a high-threat sensitive command?
// Sensitivity is derived from the questionnaire: a category's control
// instructions are sensitive when more than 50 % of respondents rated them
// high-threat (Table III).
type Detector struct {
	sensitive map[instr.Category]bool
}

// NewDetector derives a detector from aggregated questionnaire results.
func NewDetector(results survey.Results) *Detector {
	d := &Detector{sensitive: make(map[instr.Category]bool, 9)}
	for _, c := range results.SensitiveCategories() {
		d.sensitive[c] = true
	}
	return d
}

// DefaultDetector runs the calibrated questionnaire (340 respondents, quota
// mode) and derives the detector from it — the paper's Table III pipeline
// end to end.
func DefaultDetector() (*Detector, error) {
	pop, err := survey.Simulate(survey.DefaultProfile(), 340, survey.ModeQuota, rand.New(rand.NewSource(2021)))
	if err != nil {
		return nil, fmt.Errorf("default detector: %w", err)
	}
	res, err := survey.Aggregate(pop)
	if err != nil {
		return nil, fmt.Errorf("default detector: %w", err)
	}
	return NewDetector(res), nil
}

// IsSensitive implements the first-stage judgment: only control
// instructions can be sensitive (Fig 4: users rate control far above
// status acquisition), and only in the categories that crossed the
// questionnaire's 50 % threshold.
func (d *Detector) IsSensitive(in instr.Instruction) bool {
	if in.Kind != instr.KindControl {
		return false
	}
	return d.sensitive[in.Category]
}

// SensitiveCategories lists the flagged categories in Table I order.
func (d *Detector) SensitiveCategories() []instr.Category {
	var out []instr.Category
	for _, c := range instr.Categories() {
		if d.sensitive[c] {
			out = append(out, c)
		}
	}
	return out
}
