package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"iotsid/internal/sensor"
)

// TestChaosPlanDeterminism: the fault plan is a pure function of
// (seed, call index) — two plans with equal seeds agree on every call, a
// different seed diverges somewhere.
func TestChaosPlanDeterminism(t *testing.T) {
	const calls = 300
	a := ChaosPlan(42, 0.2, 0.1, 0.1)
	b := ChaosPlan(42, 0.2, 0.1, 0.1)
	c := ChaosPlan(43, 0.2, 0.1, 0.1)
	diverged := false
	counts := map[FaultKind]int{}
	for i := 0; i < calls; i++ {
		if a(i) != b(i) {
			t.Fatalf("equal seeds diverge at call %d: %v vs %v", i, a(i), b(i))
		}
		if a(i) != c(i) {
			diverged = true
		}
		counts[a(i)]++
	}
	if !diverged {
		t.Error("different seeds produced identical plans")
	}
	// With 40% total fault probability every class shows up in 300 draws.
	for _, k := range []FaultKind{FaultNone, FaultError, FaultHang, FaultByzantine} {
		if counts[k] == 0 {
			t.Errorf("fault class %v never drawn", k)
		}
	}
}

// TestChaosCollectorFaults drives each fault class through the wrapper.
func TestChaosCollectorFaults(t *testing.T) {
	healthy := sensor.NewSnapshot(time.Unix(5, 0))
	healthy.Set(sensor.FeatSmoke, sensor.Bool(false))
	healthy.Set(sensor.FeatAirQuality, sensor.Number(30))
	script := []FaultKind{FaultNone, FaultError, FaultByzantine, FaultHang}
	cc := &ChaosCollector{
		Inner: staticCollector{snap: healthy},
		Plan:  func(call int) FaultKind { return script[call%len(script)] },
	}

	// Call 0: pass-through.
	snap, err := cc.Collect(context.Background())
	if err != nil || snap.Bool(sensor.FeatSmoke) {
		t.Fatalf("pass-through = %v, %v", snap.Values, err)
	}

	// Call 1: injected error.
	if _, err := cc.Collect(context.Background()); err == nil {
		t.Fatal("want injected error")
	}

	// Call 2: byzantine — booleans flipped, numbers intact, original
	// snapshot untouched.
	snap, err = cc.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Bool(sensor.FeatSmoke) {
		t.Fatal("byzantine corruption did not flip the boolean")
	}
	if n, _ := snap.Number(sensor.FeatAirQuality); n != 30 {
		t.Errorf("byzantine corruption touched a number: %v", n)
	}
	if healthy.Bool(sensor.FeatSmoke) {
		t.Fatal("corruption mutated the inner snapshot")
	}

	// Call 3: hang — only the caller's deadline releases the collect.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := cc.Collect(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang fault = %v, want deadline exceeded", err)
	}

	if cc.Calls() != 4 {
		t.Errorf("Calls = %d, want 4", cc.Calls())
	}

	// Custom corruption hook wins over the default.
	cc2 := &ChaosCollector{
		Inner: staticCollector{snap: healthy},
		Plan:  func(int) FaultKind { return FaultByzantine },
		Corrupt: func(s sensor.Snapshot) sensor.Snapshot {
			out := s.Clone()
			out.Set(sensor.FeatAirQuality, sensor.Number(999))
			return out
		},
	}
	snap, err = cc2.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := snap.Number(sensor.FeatAirQuality); n != 999 {
		t.Errorf("custom corruption not applied: %v", n)
	}

	// No inner collector is an error, not a panic.
	if _, err := (&ChaosCollector{}).Collect(context.Background()); err == nil {
		t.Error("want nil-inner error")
	}
}
