package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"iotsid/internal/sensor"
)

// TestChaosPlanDeterminism: the fault plan is a pure function of
// (seed, call index) — two plans with equal seeds agree on every call, a
// different seed diverges somewhere.
func TestChaosPlanDeterminism(t *testing.T) {
	const calls = 300
	a := ChaosPlan(42, 0.2, 0.1, 0.1)
	b := ChaosPlan(42, 0.2, 0.1, 0.1)
	c := ChaosPlan(43, 0.2, 0.1, 0.1)
	diverged := false
	counts := map[FaultKind]int{}
	for i := 0; i < calls; i++ {
		if a(i) != b(i) {
			t.Fatalf("equal seeds diverge at call %d: %v vs %v", i, a(i), b(i))
		}
		if a(i) != c(i) {
			diverged = true
		}
		counts[a(i)]++
	}
	if !diverged {
		t.Error("different seeds produced identical plans")
	}
	// With 40% total fault probability every class shows up in 300 draws.
	for _, k := range []FaultKind{FaultNone, FaultError, FaultHang, FaultByzantine} {
		if counts[k] == 0 {
			t.Errorf("fault class %v never drawn", k)
		}
	}
}

// TestChaosCollectorFaults drives each fault class through the wrapper.
func TestChaosCollectorFaults(t *testing.T) {
	healthy := sensor.NewSnapshot(time.Unix(5, 0))
	healthy.Set(sensor.FeatSmoke, sensor.Bool(false))
	healthy.Set(sensor.FeatAirQuality, sensor.Number(30))
	script := []FaultKind{FaultNone, FaultError, FaultByzantine, FaultHang}
	cc := &ChaosCollector{
		Inner: staticCollector{snap: healthy},
		Plan:  func(call int) FaultKind { return script[call%len(script)] },
	}

	// Call 0: pass-through.
	snap, err := cc.Collect(context.Background())
	if err != nil || snap.Bool(sensor.FeatSmoke) {
		t.Fatalf("pass-through = %v, %v", snap.Values, err)
	}

	// Call 1: injected error.
	if _, err := cc.Collect(context.Background()); err == nil {
		t.Fatal("want injected error")
	}

	// Call 2: byzantine — booleans flipped, numbers intact, original
	// snapshot untouched.
	snap, err = cc.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Bool(sensor.FeatSmoke) {
		t.Fatal("byzantine corruption did not flip the boolean")
	}
	if n, _ := snap.Number(sensor.FeatAirQuality); n != 30 {
		t.Errorf("byzantine corruption touched a number: %v", n)
	}
	if healthy.Bool(sensor.FeatSmoke) {
		t.Fatal("corruption mutated the inner snapshot")
	}

	// Call 3: hang — only the caller's deadline releases the collect.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := cc.Collect(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang fault = %v, want deadline exceeded", err)
	}

	if cc.Calls() != 4 {
		t.Errorf("Calls = %d, want 4", cc.Calls())
	}

	// Custom corruption hook wins over the default.
	cc2 := &ChaosCollector{
		Inner: staticCollector{snap: healthy},
		Plan:  func(int) FaultKind { return FaultByzantine },
		Corrupt: func(s sensor.Snapshot) sensor.Snapshot {
			out := s.Clone()
			out.Set(sensor.FeatAirQuality, sensor.Number(999))
			return out
		},
	}
	snap, err = cc2.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := snap.Number(sensor.FeatAirQuality); n != 999 {
		t.Errorf("custom corruption not applied: %v", n)
	}

	// No inner collector is an error, not a panic.
	if _, err := (&ChaosCollector{}).Collect(context.Background()); err == nil {
		t.Error("want nil-inner error")
	}
}

// TestNumericCorruptionModes: each corruption kind transforms the target
// feature as specified and leaves everything else untouched.
func TestNumericCorruptionModes(t *testing.T) {
	base := sensor.NewSnapshot(time.Unix(5, 0))
	base.Set(sensor.FeatAirQuality, sensor.Number(50))
	base.Set(sensor.FeatMotion, sensor.Bool(true))

	spike := NumericCorruption(CorruptSpike, sensor.FeatAirQuality, 300)
	if got, _ := spike(0, base).Number(sensor.FeatAirQuality); got != 350 {
		t.Fatalf("spike = %v, want 350", got)
	}
	stuck := NumericCorruption(CorruptStuck, sensor.FeatAirQuality, 77)
	for call := 0; call < 3; call++ {
		if got, _ := stuck(call, base).Number(sensor.FeatAirQuality); got != 77 {
			t.Fatalf("stuck call %d = %v, want 77", call, got)
		}
	}
	drift := NumericCorruption(CorruptDrift, sensor.FeatAirQuality, 1.5)
	if got, _ := drift(0, base).Number(sensor.FeatAirQuality); got != 51.5 {
		t.Fatalf("drift call 0 = %v, want 51.5", got)
	}
	if got, _ := drift(9, base).Number(sensor.FeatAirQuality); got != 65 {
		t.Fatalf("drift call 9 = %v, want 65", got)
	}
	// The original snapshot is never mutated, and other features survive.
	if got, _ := base.Number(sensor.FeatAirQuality); got != 50 {
		t.Fatalf("corruption mutated the input: %v", got)
	}
	if !drift(3, base).Bool(sensor.FeatMotion) {
		t.Fatal("corruption dropped an untouched feature")
	}
	// Snapshots without the target feature pass through untouched.
	empty := sensor.NewSnapshot(time.Unix(5, 0))
	empty.Set(sensor.FeatMotion, sensor.Bool(false))
	if out := spike(0, empty); len(out.Values) != 1 {
		t.Fatalf("missing-feature snapshot altered: %v", out.Values)
	}
}

// TestChaosCorruptAtPrecedence: CorruptAt wins over Corrupt and receives
// the live call index, so drift accumulates across byzantine calls.
func TestChaosCorruptAtPrecedence(t *testing.T) {
	healthy := sensor.NewSnapshot(time.Unix(5, 0))
	healthy.Set(sensor.FeatAirQuality, sensor.Number(100))
	cc := &ChaosCollector{
		Inner:     staticCollector{snap: healthy},
		Plan:      func(call int) FaultKind { return FaultByzantine },
		Corrupt:   func(s sensor.Snapshot) sensor.Snapshot { t.Fatal("Corrupt called despite CorruptAt"); return s },
		CorruptAt: NumericCorruption(CorruptDrift, sensor.FeatAirQuality, 2),
	}
	want := []float64{102, 104, 106}
	for call, w := range want {
		snap, err := cc.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := snap.Number(sensor.FeatAirQuality); got != w {
			t.Fatalf("call %d = %v, want %v", call, got, w)
		}
	}
}
