package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/obs"
	"iotsid/internal/resilience"
	"iotsid/internal/sensor"
)

// fakeDetailed is a DetailedCollector with scripted provenance, for driving
// the fail-closed path without a network.
type fakeDetailed struct {
	snap sensor.Snapshot
	prov Provenance
}

func (f *fakeDetailed) Collect(ctx context.Context) (sensor.Snapshot, error) { return f.snap, nil }
func (f *fakeDetailed) CollectDetailed(ctx context.Context) (sensor.Snapshot, Provenance, error) {
	return f.snap, f.prov, nil
}

// instrumentedFramework builds a framework over a fixed snapshot with a
// fresh registry.
func instrumentedFramework(t *testing.T, snap sensor.Snapshot) (*Framework, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	f, err := New(Config{
		Detector:  detectorForTest(t),
		Collector: CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) { return snap, nil }),
		Memory:    memoryForTest(t),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, reg
}

// counterValue scrapes one rendered series value out of the registry — the
// tests read through the exposition so they also cover the encoder path.
func expositionContains(t *testing.T, reg *obs.Registry, line string) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(line)) {
		t.Fatalf("exposition missing %q:\n%s", line, buf.String())
	}
}

// TestAuthorizeSteadyStateAllocs is the acceptance gate: the *instrumented*
// Authorize path — cached context, interned reasons, pooled features,
// compiled tree, sharded log, metric increments — allocates nothing in
// steady state.
func TestAuthorizeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	snap := legalCtx(t, dataset.ModelWindow)
	reg := obs.NewRegistry()
	cached, err := NewCachedCollector(
		CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) { return snap, nil }),
		time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cached.Instrument(reg)
	f, err := New(Config{
		Detector:  detectorForTest(t),
		Collector: cached,
		Memory:    memoryForTest(t),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstr(t, "window.open", "window-1")
	ctx := context.Background()
	// Warm: buffer pool, reason interning table, cache fill.
	for i := 0; i < 3; i++ {
		if _, err := f.Authorize(ctx, in); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dec, err := f.Authorize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatal("expected allow on a legal scene")
		}
	})
	if allocs != 0 {
		t.Errorf("instrumented Authorize steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAuthorizeDecisionCounters: allow, reject and fail-closed each land in
// their own pre-registered series, and the non-sensitive path counts as a
// non-sensitive allow.
func TestAuthorizeDecisionCounters(t *testing.T) {
	ctx := context.Background()
	legal := legalCtx(t, dataset.ModelWindow)
	f, reg := instrumentedFramework(t, legal)
	winOpen := buildInstr(t, "window.open", "window-1")
	for i := 0; i < 3; i++ {
		if _, err := f.Authorize(ctx, winOpen); err != nil {
			t.Fatal(err)
		}
	}
	// Rejections: same instruction against an attack scene.
	attack := attackCtx(t, dataset.ModelWindow)
	fr, regR := instrumentedFramework(t, attack)
	rejected := 0
	for i := 0; i < 4; i++ {
		dec, err := fr.Authorize(ctx, winOpen)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			rejected++
		}
	}
	if rejected != 4 {
		t.Fatalf("attack scene rejected %d/4", rejected)
	}
	expositionContains(t, reg, `iotsid_authz_decisions_total{outcome="allow",sensitive="true"} 3`)
	expositionContains(t, regR, `iotsid_authz_decisions_total{outcome="reject",sensitive="true"} 4`)

	// Fail-closed: a missing required source on a sensitive instruction.
	prov := Provenance{{Name: "gw", Required: true, State: SourceMissing}}
	reg2 := obs.NewRegistry()
	f2, err := New(Config{
		Detector:  detectorForTest(t),
		Collector: &fakeDetailed{snap: legal, prov: prov},
		Memory:    memoryForTest(t),
		Metrics:   reg2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f2.Authorize(ctx, winOpen)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed {
		t.Fatal("fail-closed decision must reject")
	}
	expositionContains(t, reg2, `iotsid_authz_decisions_total{outcome="fail_closed",sensitive="true"} 1`)
	// A non-sensitive instruction still judges on the degraded context.
	status := buildInstr(t, "tv.on", "tv-1")
	if _, err := f2.Authorize(ctx, status); err != nil {
		t.Fatal(err)
	}
	expositionContains(t, reg2, `iotsid_authz_decisions_total{outcome="allow",sensitive="false"} 1`)
}

// TestAuthorizeLatencyHistogramDeterministic injects a fixed-step clock:
// every Authorize measures exactly one step, so the histogram's buckets,
// count and sum are bit-reproducible.
func TestAuthorizeLatencyHistogramDeterministic(t *testing.T) {
	const step = 2 * time.Millisecond
	now := time.Unix(1700000000, 0)
	clock := func() time.Time {
		now = now.Add(step)
		return now
	}
	snap := legalCtx(t, dataset.ModelWindow)
	reg := obs.NewRegistry()
	f, err := New(Config{
		Detector:  detectorForTest(t),
		Collector: CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) { return snap, nil }),
		Memory:    memoryForTest(t),
		Metrics:   reg,
		Now:       clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstr(t, "window.open", "window-1")
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := f.Authorize(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	var want float64
	for i := 0; i < n; i++ {
		want += step.Seconds()
	}
	// 2ms lands in the le=0.0025 bucket; rendered cumulatively.
	expositionContains(t, reg, `iotsid_authz_latency_seconds_bucket{le="0.0025"} `+fmt.Sprint(n))
	expositionContains(t, reg, `iotsid_authz_latency_seconds_count `+fmt.Sprint(n))
	expositionContains(t, reg, fmt.Sprintf("iotsid_authz_latency_seconds_sum %v", want))
	// A second framework over the same fake clock reproduces the state
	// byte for byte.
	now = time.Unix(1700000000, 0)
	reg2 := obs.NewRegistry()
	f2, err := New(Config{
		Detector:  detectorForTest(t),
		Collector: CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) { return snap, nil }),
		Memory:    memoryForTest(t),
		Metrics:   reg2,
		Now:       clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := f2.Authorize(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	var b1, b2 bytes.Buffer
	if err := reg.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("replayed run diverged:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

// TestDecisionLogEvictionCounter is the drop-visibility fix: the ring's
// eviction counter must equal exactly (appends - retained), the number of
// entries the bounded ring silently overwrote.
func TestDecisionLogEvictionCounter(t *testing.T) {
	legal := legalCtx(t, dataset.ModelWindow)
	reg := obs.NewRegistry()
	f, err := New(Config{
		Detector:    detectorForTest(t),
		Collector:   CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) { return legal, nil }),
		Memory:      memoryForTest(t),
		Metrics:     reg,
		LogCapacity: 16, // 8 shards × 2 slots
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		in := buildInstr(t, "window.open", fmt.Sprintf("window-%d", i%7))
		if _, err := f.Judge(in, legal); err != nil {
			t.Fatal(err)
		}
	}
	retained := len(f.Log())
	appends := reg.NewCounter(metricLogAppends, "Entries appended to the sharded authorization decision log.")
	evictions := reg.NewCounter(metricLogEvictions, "Oldest entries overwritten (dropped) by the decision log's bounded ring.")
	if appends.Value() != n {
		t.Fatalf("appends counter %d, want %d", appends.Value(), n)
	}
	if got, want := evictions.Value(), uint64(n-retained); got != want {
		t.Fatalf("eviction counter %d, want %d (appends %d - retained %d)", got, want, n, retained)
	}
	if evictions.Value() == 0 {
		t.Fatal("test expected the ring to overflow; raise n or shrink capacity")
	}
}

// TestCachedCollectorMetrics scripts every cache outcome with an injected
// clock: miss, hit, coalesced waiter, stale fallback, hard error.
func TestCachedCollectorMetrics(t *testing.T) {
	var fail bool
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	inner := CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		if fail {
			return sensor.Snapshot{}, errors.New("gateway down")
		}
		return sensor.NewSnapshot(time.Unix(1, 0)), nil
	})
	c, err := NewCachedCollector(inner, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	c.ServeStaleOnError(time.Hour)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	ctx := context.Background()

	// Leader + coalesced waiter share one inner collect.
	var wg sync.WaitGroup
	wg.Add(1)
	leaderDone := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := c.Collect(ctx)
		leaderDone <- err
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Collect(ctx); err != nil {
			t.Error(err)
		}
	}()
	// The waiter must be registered as in-flight before release; poll the
	// coalesced counter (it increments before blocking on done).
	vec := reg.NewCounterVec(metricCache,
		"CachedCollector results: hit, miss (led the inner collect), coalesced (shared an in-flight collect), stale (serve-stale-on-error fallback), error.",
		"result")
	coalesced := vec.With("coalesced")
	for i := 0; coalesced.Value() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	// Fresh hit.
	if _, err := c.Collect(ctx); err != nil {
		t.Fatal(err)
	}
	// Expire the TTL, fail the inner collect → stale fallback.
	release = make(chan struct{})
	close(release)
	fail = true
	now = now.Add(2 * time.Minute)
	if _, err := c.Collect(ctx); err != nil {
		t.Fatal(err)
	}
	// Beyond the stale budget → hard error.
	now = now.Add(2 * time.Hour)
	if _, err := c.Collect(ctx); err == nil {
		t.Fatal("expected error beyond the stale budget")
	}
	expositionContains(t, reg, `iotsid_cache_collects_total{result="miss"} 3`)
	expositionContains(t, reg, `iotsid_cache_collects_total{result="hit"} 1`)
	expositionContains(t, reg, `iotsid_cache_collects_total{result="coalesced"} 1`)
	expositionContains(t, reg, `iotsid_cache_collects_total{result="stale"} 1`)
	expositionContains(t, reg, `iotsid_cache_collects_total{result="error"} 1`)
}

// TestMultiCollectorMetrics: provenance counters track fresh/stale/missing
// per source, and retry attempts are counted through the policy hook.
func TestMultiCollectorMetrics(t *testing.T) {
	var auxFail bool
	aux := CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		if auxFail {
			return sensor.Snapshot{}, errors.New("aux down")
		}
		snap := sensor.NewSnapshot(time.Unix(10, 0))
		snap.Set(sensor.FeatTempIndoor, sensor.Number(21))
		return snap, nil
	})
	sim := CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) {
		snap := sensor.NewSnapshot(time.Unix(11, 0))
		snap.Set(sensor.FeatOccupancy, sensor.Bool(true))
		return snap, nil
	})
	reg := obs.NewRegistry()
	now := time.Unix(2000, 0)
	noSleep := func(ctx context.Context, d time.Duration) error { return nil }
	m, err := NewMultiCollector(
		MultiConfig{Metrics: reg, Now: func() time.Time { return now }},
		Source{
			Name: "aux", Collector: aux, Staleness: time.Minute,
			Retry: &resilience.Policy{MaxAttempts: 3, Sleep: noSleep},
		},
		Source{Name: "sim", Collector: sim, Required: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Round 1: both fresh, no retries.
	if _, _, err := m.CollectDetailed(ctx); err != nil {
		t.Fatal(err)
	}
	// Round 2: aux fails (3 attempts → 2 retries), serves stale.
	auxFail = true
	now = now.Add(10 * time.Second)
	if _, prov, err := m.CollectDetailed(ctx); err != nil || prov[0].State != SourceStale {
		t.Fatalf("round 2: prov %+v err %v", prov, err)
	}
	// Round 3: aux fails beyond the budget → missing.
	now = now.Add(10 * time.Minute)
	if _, prov, err := m.CollectDetailed(ctx); err != nil || prov[0].State != SourceMissing {
		t.Fatalf("round 3: prov %+v err %v", prov, err)
	}
	expositionContains(t, reg, `iotsid_collector_source_collects_total{source="aux",state="fresh"} 1`)
	expositionContains(t, reg, `iotsid_collector_source_collects_total{source="aux",state="stale"} 1`)
	expositionContains(t, reg, `iotsid_collector_source_collects_total{source="aux",state="missing"} 1`)
	expositionContains(t, reg, `iotsid_collector_source_collects_total{source="sim",state="fresh"} 3`)
	expositionContains(t, reg, `iotsid_collector_retry_attempts_total{source="aux"} 4`)
}

// TestBreakerTransitionHook: the counter helper sees every transition of
// the breaker state machine.
func TestBreakerTransitionHook(t *testing.T) {
	reg := obs.NewRegistry()
	now := time.Unix(0, 0)
	b := resilience.NewBreaker(resilience.BreakerConfig{
		Name: "gw", FailureThreshold: 2, OpenTimeout: time.Second, HalfOpenSuccesses: 1,
		Now:           func() time.Time { return now },
		OnStateChange: BreakerTransitionHook(reg, "gw"),
	})
	fail := errors.New("boom")
	b.Record(fail)
	b.Record(fail) // trips: closed → open
	if b.State() != resilience.StateOpen {
		t.Fatal("breaker should be open")
	}
	now = now.Add(2 * time.Second)
	if b.State() != resilience.StateHalfOpen { // open → half-open
		t.Fatal("breaker should be half-open")
	}
	b.Record(nil) // half-open → closed
	if b.State() != resilience.StateClosed {
		t.Fatal("breaker should be closed")
	}
	expositionContains(t, reg, `iotsid_breaker_transitions_total{name="gw",to="open"} 1`)
	expositionContains(t, reg, `iotsid_breaker_transitions_total{name="gw",to="half_open"} 1`)
	expositionContains(t, reg, `iotsid_breaker_transitions_total{name="gw",to="closed"} 1`)
}
