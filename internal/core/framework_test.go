package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"iotsid/internal/automation"
	"iotsid/internal/bridge"
	"iotsid/internal/dataset"
	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/miio"
	"iotsid/internal/sensor"
	"iotsid/internal/smartthings"
	"iotsid/internal/trace"
)

func frameworkForTest(t *testing.T, c Collector) *Framework {
	t.Helper()
	f, err := New(Config{
		Detector:  detectorForTest(t),
		Collector: c,
		Memory:    memoryForTest(t),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

// staticCollector returns a fixed snapshot.
type staticCollector struct{ snap sensor.Snapshot }

func (s staticCollector) Collect(context.Context) (sensor.Snapshot, error) { return s.snap, nil }

func TestFrameworkAuthorize(t *testing.T) {
	f := frameworkForTest(t, staticCollector{snap: attackCtx(t, dataset.ModelWindow)})
	dec, err := f.Authorize(context.Background(), buildInstr(t, "window.open", "window-1"))
	if err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if dec.Allowed {
		t.Errorf("attack context allowed: %+v", dec)
	}
	// Decision log records it.
	log := f.Log()
	if len(log) != 1 || log[0].Op != "window.open" || log[0].Decision.Allowed {
		t.Errorf("log = %+v", log)
	}

	f2 := frameworkForTest(t, staticCollector{snap: legalCtx(t, dataset.ModelWindow)})
	dec, err = f2.Authorize(context.Background(), buildInstr(t, "window.open", "window-1"))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed {
		t.Errorf("legal context rejected: %+v", dec)
	}
}

// countingStatic wraps a fixed snapshot and counts Collect calls.
type countingStatic struct {
	snap  sensor.Snapshot
	calls int
}

func (c *countingStatic) Collect(context.Context) (sensor.Snapshot, error) {
	c.calls++
	return c.snap, nil
}

func TestFrameworkAuthorizeBatch(t *testing.T) {
	col := &countingStatic{snap: legalCtx(t, dataset.ModelWindow)}
	f := frameworkForTest(t, col)
	ins := []instr.Instruction{
		buildInstr(t, "window.open", "window-1"),
		buildInstr(t, "window.get_state", "window-1"),
		buildInstr(t, "window.open", "window-2"),
	}
	decs, err := f.AuthorizeBatch(context.Background(), ins)
	if err != nil {
		t.Fatalf("AuthorizeBatch: %v", err)
	}
	if len(decs) != 3 {
		t.Fatalf("decisions = %d", len(decs))
	}
	for i, dec := range decs {
		if !dec.Allowed {
			t.Errorf("decision %d rejected: %+v", i, dec)
		}
	}
	if col.calls != 1 {
		t.Errorf("batch collected %d times, want 1", col.calls)
	}
	if got := f.Log(); len(got) != 3 {
		t.Errorf("log = %d entries", len(got))
	}
	// Empty batch is a no-op that does not collect.
	if decs, err := f.AuthorizeBatch(context.Background(), nil); err != nil || decs != nil {
		t.Errorf("empty batch = %v, %v", decs, err)
	}
	if col.calls != 1 {
		t.Errorf("empty batch collected")
	}
}

func TestFrameworkLogBoundedAndRecent(t *testing.T) {
	f, err := New(Config{
		Detector:    detectorForTest(t),
		Collector:   staticCollector{snap: legalCtx(t, dataset.ModelWindow)},
		Memory:      memoryForTest(t),
		LogCapacity: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstr(t, "window.open", "window-1")
	for i := 0; i < 1000; i++ {
		if _, err := f.Authorize(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	log := f.Log()
	if len(log) == 0 || len(log) > 64 {
		t.Fatalf("log retained %d entries, want bounded by 64", len(log))
	}
	// The retained window is the newest traffic.
	if log[len(log)-1].Seq != 1000 {
		t.Errorf("newest seq = %d, want 1000", log[len(log)-1].Seq)
	}
	recent := f.LogRecent(3)
	if len(recent) != 3 {
		t.Fatalf("LogRecent(3) = %d", len(recent))
	}
	if recent[2].Seq != 1000 || recent[0].Seq != 998 {
		t.Errorf("recent window = [%d..%d]", recent[0].Seq, recent[2].Seq)
	}
}

func TestFrameworkWithCachedCollector(t *testing.T) {
	inner := &countingStatic{snap: legalCtx(t, dataset.ModelWindow)}
	cached, err := NewCachedCollector(inner, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	f := frameworkForTest(t, cached)
	in := buildInstr(t, "window.open", "window-1")
	for i := 0; i < 25; i++ {
		dec, err := f.Authorize(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatalf("legal context rejected: %+v", dec)
		}
	}
	if inner.calls != 1 {
		t.Errorf("cached framework collected %d times, want 1", inner.calls)
	}
}

func TestFrameworkValidation(t *testing.T) {
	if _, err := New(Config{Detector: detectorForTest(t), Memory: memoryForTest(t)}); err == nil {
		t.Error("want collector error")
	}
	if _, err := New(Config{Collector: staticCollector{}}); err == nil {
		t.Error("want judger construction error")
	}
}

func TestFrameworkGate(t *testing.T) {
	f := frameworkForTest(t, staticCollector{})
	if err := f.Gate(buildInstr(t, "window.open", "window-1"), attackCtx(t, dataset.ModelWindow)); err == nil {
		t.Error("gate must block attack context")
	}
	if err := f.Gate(buildInstr(t, "window.open", "window-1"), legalCtx(t, dataset.ModelWindow)); err != nil {
		t.Errorf("gate blocked legal context: %v", err)
	}
	// Unjudgeable sensitive instruction errors.
	if err := f.Gate(buildInstr(t, "window.open", "window-1"), sensor.NewSnapshot(sensorTime())); err == nil {
		t.Error("gate must propagate judgment errors")
	}
}

func TestFrameworkInterceptorFailsClosed(t *testing.T) {
	f := frameworkForTest(t, staticCollector{})
	intercept := f.Interceptor()

	// Empty context: sensitive instruction cannot be judged -> blocked.
	allow, reason := intercept(buildInstr(t, "window.open", "window-1"), sensor.NewSnapshot(sensorTime()))
	if allow {
		t.Error("unjudgeable sensitive instruction must fail closed")
	}
	if !strings.Contains(reason, "cannot judge") {
		t.Errorf("reason = %q", reason)
	}
	// Empty context, non-sensitive instruction -> allowed (fails open).
	allow, _ = intercept(buildInstr(t, "vacuum.start", "vacuum-1"), sensor.NewSnapshot(sensorTime()))
	if !allow {
		t.Error("non-sensitive instruction must not be blocked by judgment errors")
	}
	// Normal paths.
	if allow, _ = intercept(buildInstr(t, "window.open", "window-1"), attackCtx(t, dataset.ModelWindow)); allow {
		t.Error("attack context allowed")
	}
	if allow, _ = intercept(buildInstr(t, "window.open", "window-1"), legalCtx(t, dataset.ModelWindow)); !allow {
		t.Error("legal context blocked")
	}
}

// TestFrameworkBlocksSpoofedSmokeAutomation reproduces the paper's
// motivating attack (§III-A): malicious code forges the smoke sensor so the
// platform's "if fire, open the window" rule fires while the burglar waits
// outside. The IDS sits between trigger and actuator and rejects the open.
func TestFrameworkBlocksSpoofedSmokeAutomation(t *testing.T) {
	h, err := home.NewStandard(home.EnvConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := frameworkForTest(t, &SimCollector{Env: h.Env()})

	engine := automation.NewEngine(instr.BuiltinRegistry(), h.Execute)
	engine.SetInterceptor(f.Interceptor())
	if err := engine.AddRuleText("fire vent", `WHEN smoke == TRUE THEN window.open @ window-1`); err != nil {
		t.Fatal(err)
	}

	// The attacker spoofs the smoke boolean only; every correlate stays
	// normal (clean air, no gas, nobody home, night).
	spoof := sensor.NewSnapshot(h.Env().Now())
	spoof.Set(sensor.FeatSmoke, sensor.Bool(true))
	spoof.Set(sensor.FeatGas, sensor.Bool(false))
	spoof.Set(sensor.FeatAirQuality, sensor.Number(32))
	spoof.Set(sensor.FeatVoiceCmd, sensor.Bool(false))
	spoof.Set(sensor.FeatMotion, sensor.Bool(false))
	spoof.Set(sensor.FeatOccupancy, sensor.Bool(false))
	spoof.Set(sensor.FeatDoorLock, sensor.Label(sensor.LockUnlocked))
	h.Env().Apply(spoof)

	events := engine.Evaluate(h.Env().Snapshot())
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Allowed {
		t.Fatalf("spoofed smoke attack executed: %+v", events[0])
	}
	if h.Env().Snapshot().Bool(sensor.FeatWindowOpen) {
		t.Fatal("window opened despite interception")
	}

	// A genuine fire (consistent correlates) is allowed through.
	real := sensor.NewSnapshot(h.Env().Now())
	real.Set(sensor.FeatSmoke, sensor.Bool(true))
	real.Set(sensor.FeatGas, sensor.Bool(false))
	real.Set(sensor.FeatAirQuality, sensor.Number(210))
	real.Set(sensor.FeatMotion, sensor.Bool(true))
	real.Set(sensor.FeatOccupancy, sensor.Bool(true))
	real.Set(sensor.FeatDoorLock, sensor.Label(sensor.LockLocked))
	h.Env().Apply(real)
	engine.ResetEdges()
	// Force a fresh rising edge: clear then set.
	clear := sensor.NewSnapshot(h.Env().Now())
	clear.Set(sensor.FeatSmoke, sensor.Bool(false))
	h.Env().Apply(clear)
	engine.Evaluate(h.Env().Snapshot())
	h.Env().Apply(real)
	events = engine.Evaluate(h.Env().Snapshot())
	if len(events) != 1 || !events[0].Allowed {
		t.Fatalf("genuine fire blocked: %+v", events)
	}
	if !h.Env().Snapshot().Bool(sensor.FeatWindowOpen) {
		t.Fatal("window did not open on a genuine fire")
	}
}

// TestFrameworkOverMiioPath exercises the full Xiaomi network path: the
// collector pulls the context through the encrypted UDP protocol and the
// framework gates an execute call on the same gateway.
func TestFrameworkOverMiioPath(t *testing.T) {
	h, err := home.NewStandard(home.EnvConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	token, err := miio.ParseToken("ffeeddccbbaa00112233445566778899")
	if err != nil {
		t.Fatal(err)
	}
	handler := bridge.NewXiaomiHandler(h, instr.BuiltinRegistry())
	gw, err := miio.NewGateway(miio.GatewayConfig{DeviceID: 0x2001, Token: token, Handler: handler})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	client, err := miio.Dial(gw.Addr().String(), token, miio.WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	f := frameworkForTest(t, &MiioCollector{Client: client})
	handler.SetGate(f.Gate)

	// Stage a burglary context, then try the sensitive open via the
	// vendor control path: the gate must reject it.
	attack := attackCtx(t, dataset.ModelWindow)
	h.Env().Apply(attack)
	if _, err := client.Call("execute", map[string]any{"op": "window.open", "device": "window-1"}); err == nil {
		t.Fatal("attack-context window.open executed over miio")
	}
	if h.Env().Snapshot().Bool(sensor.FeatWindowOpen) {
		t.Fatal("window opened")
	}

	// Stage a legal context: allowed.
	h.Env().Apply(legalCtx(t, dataset.ModelWindow))
	if _, err := client.Call("execute", map[string]any{"op": "window.open", "device": "window-1"}); err != nil {
		t.Fatalf("legal window.open rejected: %v", err)
	}
	if !h.Env().Snapshot().Bool(sensor.FeatWindowOpen) {
		t.Fatal("window did not open")
	}
	// The collector really works over the wire.
	snap, err := f.collector.Collect(context.Background())
	if err != nil {
		t.Fatalf("collect over miio: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("collected snapshot invalid: %v", err)
	}
}

// TestFrameworkOverSmartThingsPath mirrors the miio test on the REST path.
func TestFrameworkOverSmartThingsPath(t *testing.T) {
	h, err := home.NewStandard(home.EnvConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	backend := bridge.NewSTBackend(h, instr.BuiltinRegistry())
	srv, err := smartthings.NewServer(smartthings.ServerConfig{Token: "llat-x", Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := smartthings.NewClient(srv.URL(), "llat-x")
	if err != nil {
		t.Fatal(err)
	}

	f := frameworkForTest(t, &STCollector{Client: client})
	backend.SetGate(f.Gate)

	h.Env().Apply(attackCtx(t, dataset.ModelWindow))
	if _, err := client.CallService(context.Background(), "window", "open", map[string]any{"device_id": "window-1"}); err == nil {
		t.Fatal("attack-context window.open executed over REST")
	}
	h.Env().Apply(legalCtx(t, dataset.ModelWindow))
	if _, err := client.CallService(context.Background(), "window", "open", map[string]any{"device_id": "window-1"}); err != nil {
		t.Fatalf("legal window.open rejected: %v", err)
	}
	snap, err := f.collector.Collect(context.Background())
	if err != nil {
		t.Fatalf("collect over REST: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("collected snapshot invalid: %v", err)
	}
}

func TestMultiCollectorMergesVendors(t *testing.T) {
	a := sensor.NewSnapshot(time.Unix(1, 0))
	a.Set(sensor.FeatSmoke, sensor.Bool(false))
	a.Set(sensor.FeatTempIndoor, sensor.Number(20))
	b := sensor.NewSnapshot(time.Unix(2, 0))
	b.Set(sensor.FeatSmoke, sensor.Bool(true)) // later source wins
	b.Set(sensor.FeatMotion, sensor.Bool(true))

	srcs, err := AllRequired(staticCollector{snap: a}, staticCollector{snap: b})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMultiCollector(MultiConfig{}, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := mc.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Bool(sensor.FeatSmoke) || !snap.Bool(sensor.FeatMotion) {
		t.Errorf("merge lost values: %v", snap.Values)
	}
	if n, _ := snap.Number(sensor.FeatTempIndoor); n != 20 {
		t.Error("merge lost first-source value")
	}
	if _, err := NewMultiCollector(MultiConfig{}); err == nil {
		t.Error("want empty collector error")
	}
	failingSrcs, err := AllRequired(&SimCollector{})
	if err != nil {
		t.Fatal(err)
	}
	failing, err := NewMultiCollector(MultiConfig{}, failingSrcs...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := failing.Collect(context.Background()); err == nil {
		t.Error("want propagated source error")
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := (&SimCollector{}).Collect(context.Background()); err == nil {
		t.Error("sim collector without env must fail")
	}
	if _, err := (&MiioCollector{}).Collect(context.Background()); err == nil {
		t.Error("miio collector without client must fail")
	}
	if _, err := (&STCollector{}).Collect(context.Background()); err == nil {
		t.Error("smartthings collector without client must fail")
	}
}

func TestFrameworkAuditTrace(t *testing.T) {
	f := frameworkForTest(t, staticCollector{snap: attackCtx(t, dataset.ModelWindow)})
	audit := trace.NewLog(64)
	f.SetAuditLog(audit)
	if _, err := f.Authorize(context.Background(), buildInstr(t, "window.open", "window-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Authorize(context.Background(), buildInstr(t, "window.get_state", "window-1")); err != nil {
		t.Fatal(err)
	}
	events := audit.Select(trace.Query{Kind: trace.KindDecision})
	if len(events) != 2 {
		t.Fatalf("audit events = %d", len(events))
	}
	if events[0].Outcome != "rejected" || events[0].Fields["model"] != "window" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Outcome != "allowed" {
		t.Errorf("event 1 = %+v", events[1])
	}
	rejected := audit.CountByOutcome(trace.Query{})["rejected"]
	if rejected != 1 {
		t.Errorf("rejected = %d", rejected)
	}
	// Detaching stops auditing.
	f.SetAuditLog(nil)
	if _, err := f.Authorize(context.Background(), buildInstr(t, "window.open", "window-1")); err != nil {
		t.Fatal(err)
	}
	if audit.Total() != 2 {
		t.Errorf("audit grew after detach: %d", audit.Total())
	}
}
