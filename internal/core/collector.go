package core

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"iotsid/internal/bridge"
	"iotsid/internal/home"
	"iotsid/internal/miio"
	"iotsid/internal/sensor"
	"iotsid/internal/smartthings"
)

// Collector is the sensor data collector (§IV-B): it gathers the real-time
// readings of every relevant sensor and returns them as one unified
// snapshot. The context carries the caller's deadline and cancellation —
// collection is a network round trip on the vendor paths, and a decision
// point cannot wait forever for it.
type Collector interface {
	Collect(ctx context.Context) (sensor.Snapshot, error)
}

// SimCollector reads the home simulator directly — the zero-network path
// used by training, examples and benchmarks.
type SimCollector struct {
	Env *home.Environment
}

var _ Collector = (*SimCollector)(nil)

// Collect implements Collector.
func (c *SimCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	if c.Env == nil {
		return sensor.Snapshot{}, fmt.Errorf("core: sim collector has no environment")
	}
	if err := ctx.Err(); err != nil {
		return sensor.Snapshot{}, err
	}
	return c.Env.Snapshot(), nil
}

// MiioCollector gathers sensor data over the encrypted Xiaomi-style UDP
// protocol (§IV-B-1): one get_prop round trip for the full property list,
// then normalisation into the unified JSON snapshot form.
type MiioCollector struct {
	Client *miio.Client
	// Props lists the vendor property names to poll; defaults to the full
	// bridge table.
	Props []string
	// Normalizer decodes the vendor encodings; defaults to the bridge's.
	Normalizer *sensor.Normalizer
	// Now stamps the snapshot; defaults to time.Now.
	Now func() time.Time
}

var _ Collector = (*MiioCollector)(nil)

// Collect implements Collector. The context bounds the whole get_prop
// round trip, retries included.
func (c *MiioCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	if c.Client == nil {
		return sensor.Snapshot{}, fmt.Errorf("core: miio collector has no client")
	}
	props := c.Props
	if props == nil {
		props = bridge.XiaomiPropNames()
	}
	norm := c.Normalizer
	if norm == nil {
		norm = bridge.XiaomiNormalizer()
	}
	now := c.Now
	if now == nil {
		now = time.Now
	}
	raw, err := c.Client.CallContext(ctx, "get_prop", props)
	if err != nil {
		return sensor.Snapshot{}, fmt.Errorf("core: miio get_prop: %w", err)
	}
	var values []any
	if err := json.Unmarshal(raw, &values); err != nil {
		return sensor.Snapshot{}, fmt.Errorf("core: miio get_prop result: %w", err)
	}
	if len(values) != len(props) {
		return sensor.Snapshot{}, fmt.Errorf("core: miio returned %d values for %d props", len(values), len(props))
	}
	payload := make(map[string]any, len(props))
	for i, name := range props {
		payload[name] = values[i]
	}
	snap, err := norm.Normalize(payload, now())
	if err != nil {
		return sensor.Snapshot{}, fmt.Errorf("core: miio normalize: %w", err)
	}
	return snap, nil
}

// STCollector gathers sensor data through the Home-Assistant-style REST
// bridge (§IV-B-2): GET /api/states with the long-lived token, then decode
// the entity documents.
type STCollector struct {
	Client *smartthings.Client
}

var _ Collector = (*STCollector)(nil)

// Collect implements Collector.
func (c *STCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	if c.Client == nil {
		return sensor.Snapshot{}, fmt.Errorf("core: smartthings collector has no client")
	}
	entities, err := c.Client.States(ctx)
	if err != nil {
		return sensor.Snapshot{}, fmt.Errorf("core: smartthings states: %w", err)
	}
	snap, err := bridge.STDecodeStates(entities)
	if err != nil {
		return sensor.Snapshot{}, fmt.Errorf("core: smartthings decode: %w", err)
	}
	return snap, nil
}
