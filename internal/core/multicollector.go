package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"iotsid/internal/obs"
	"iotsid/internal/par"
	"iotsid/internal/resilience"
	"iotsid/internal/sensor"
	"iotsid/internal/trust"
)

// SourceState is the provenance of one source's contribution to a merged
// snapshot.
type SourceState string

// The three provenance states: the source answered this collect (fresh),
// the source failed but its last-good snapshot was served within the
// staleness budget (stale), or the source contributed nothing (missing).
const (
	SourceFresh   SourceState = "fresh"
	SourceStale   SourceState = "stale"
	SourceMissing SourceState = "missing"
)

// SourceStatus is one source's row in a snapshot's provenance.
type SourceStatus struct {
	Name     string      `json:"name"`
	Required bool        `json:"required"`
	State    SourceState `json:"state"`
	// Age is how long ago the served data was collected — zero when fresh.
	Age time.Duration `json:"age,omitempty"`
	// Err is the collect failure that forced a stale or missing state.
	Err string `json:"err,omitempty"`
	// Trust is the source's behavioral trust score at collect time
	// (1 = fully trusted); populated only when a trust engine is wired.
	Trust float64 `json:"trust,omitempty"`
	// LowTrust marks a source whose score sits below the engine's
	// threshold: its data is fresh but not believable.
	LowTrust bool `json:"low_trust,omitempty"`
	// cause keeps the concrete error value so the strict Collect path can
	// wrap it (errors.As reaches breaker OpenErrors through the chain).
	cause error
}

// Provenance records, per source in declaration order, where each part of
// a merged snapshot came from — the degraded-mode evidence the framework
// uses to fail closed on sensitive instructions.
type Provenance []SourceStatus

// MissingRequired lists the required sources that contributed nothing.
func (p Provenance) MissingRequired() []string {
	var out []string
	for _, s := range p {
		if s.Required && s.State == SourceMissing {
			out = append(out, s.Name)
		}
	}
	return out
}

// LowTrustRequired lists the required sources whose trust score is below
// threshold — fresh data the engine no longer believes.
func (p Provenance) LowTrustRequired() []string {
	var out []string
	for _, s := range p {
		if s.Required && s.LowTrust {
			out = append(out, s.Name)
		}
	}
	return out
}

// Degraded reports whether any source is stale, missing or low-trust.
func (p Provenance) Degraded() bool {
	for _, s := range p {
		if s.State != SourceFresh || s.LowTrust {
			return true
		}
	}
	return false
}

// DetailedCollector is a Collector that can additionally report per-source
// provenance. Framework.Authorize prefers this path: it lets a degraded
// context still serve non-sensitive instructions while sensitive ones fail
// closed.
type DetailedCollector interface {
	Collector
	CollectDetailed(ctx context.Context) (sensor.Snapshot, Provenance, error)
}

// Source declares one collector feeding the merged context.
type Source struct {
	// Name identifies the source in provenance and health reports.
	Name string
	// Collector produces this source's snapshot.
	Collector Collector
	// Required marks a source whose absence must fail sensitive
	// instructions closed; optional sources merely degrade the context.
	Required bool
	// Staleness is the budget for serving this source's last-good snapshot
	// when a fresh collect fails; zero disables the fallback.
	Staleness time.Duration
	// Retry, when non-nil, retries failed collects under the shared policy.
	Retry *resilience.Policy
	// Breaker, when non-nil, guards the source: while open, collects are
	// skipped entirely (the last-good fallback still applies).
	Breaker *resilience.Breaker
}

// MultiConfig tunes a MultiCollector.
type MultiConfig struct {
	// Now is the staleness clock; defaults to time.Now.
	Now func() time.Time
	// Health, when non-nil, receives per-source state after every collect —
	// the registry the cloud's /healthz reports.
	Health *resilience.Registry
	// HistoryLen bounds the per-source last-good history (default 8).
	HistoryLen int
	// Metrics, when non-nil, counts per-source provenance outcomes
	// (fresh/stale/missing) and retry attempts. Series are pre-registered
	// per declared source, so the collect path never does a label lookup.
	Metrics *obs.Registry
	// Trust, when non-nil, scores every fresh collect through the
	// behavioral trust engine (which must declare every source by name)
	// and stamps the provenance with per-source scores. Note the engine
	// sits *above* any caching collector: a cache legitimately serving
	// one snapshot repeatedly will trip the engine's stuck-at (dwell)
	// fingerprint by design — wire trust on raw feeds.
	Trust *trust.Engine
}

// MultiCollector merges several vendor sources into one context, later
// sources overriding earlier ones on shared features — the paper's
// "communication module for acquiring sensor data based on Xiaomi and
// Samsung devices" as a single logical collector, hardened for the
// production failure model:
//
//   - Sources are declared required or optional.
//   - A failed source falls back to its last-good snapshot when that
//     snapshot is younger than the source's staleness budget.
//   - The merged snapshot carries per-source provenance (fresh / stale /
//     missing) so the framework can fail closed on sensitive instructions
//     whenever a required source is missing.
//   - Per-source breakers stop hammering a dead gateway, and the optional
//     health registry surfaces the whole picture at /healthz.
//
// The vendor polls run concurrently; the merge happens in declaration
// order afterwards, so the merged snapshot is identical for any scheduling.
type MultiCollector struct {
	sources []Source
	now     func() time.Time
	health  *resilience.Registry
	trust   *trust.Engine
	// trustIdx[i] is source i's index in the trust engine.
	trustIdx []int

	// stateCounters[i] holds source i's pre-registered fresh/stale/missing
	// counters (indexed by provenanceIdx); nil when uninstrumented.
	stateCounters [][3]*obs.Counter

	mu      sync.Mutex
	history []*sensor.History // per-source last-good snapshots
	lastAt  []time.Time       // collection clock stamp of the newest history entry
	hasLast []bool
}

// provenanceIdx maps a SourceState onto the counter triple.
func provenanceIdx(s SourceState) int {
	switch s {
	case SourceFresh:
		return 0
	case SourceStale:
		return 1
	default:
		return 2
	}
}

var _ DetailedCollector = (*MultiCollector)(nil)

// NewMultiCollector validates the source declarations and builds the
// collector.
func NewMultiCollector(cfg MultiConfig, sources ...Source) (*MultiCollector, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: multi collector needs at least one source")
	}
	seen := make(map[string]bool, len(sources))
	for i, s := range sources {
		if s.Name == "" {
			return nil, fmt.Errorf("core: multi collector source %d has no name", i)
		}
		if s.Collector == nil {
			return nil, fmt.Errorf("core: multi collector source %q has no collector", s.Name)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("core: duplicate multi collector source %q", s.Name)
		}
		seen[s.Name] = true
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.HistoryLen <= 0 {
		cfg.HistoryLen = 8
	}
	m := &MultiCollector{
		sources: sources,
		now:     cfg.Now,
		health:  cfg.Health,
		trust:   cfg.Trust,
		history: make([]*sensor.History, len(sources)),
		lastAt:  make([]time.Time, len(sources)),
		hasLast: make([]bool, len(sources)),
	}
	if cfg.Trust != nil {
		m.trustIdx = make([]int, len(sources))
		for i, s := range sources {
			idx, ok := cfg.Trust.Index(s.Name)
			if !ok {
				return nil, fmt.Errorf("core: trust engine does not declare source %q", s.Name)
			}
			m.trustIdx[i] = idx
		}
	}
	for i, s := range sources {
		m.history[i] = sensor.NewHistory(cfg.HistoryLen)
		if m.health != nil {
			m.health.Register(s.Name, s.Required)
		}
	}
	if cfg.Metrics != nil {
		states := cfg.Metrics.NewCounterVec(metricSourceState,
			"Per-source provenance of each merged collect: fresh, stale (last-good within budget) or missing.",
			"source", "state")
		retries := cfg.Metrics.NewCounterVec(metricRetries,
			"Retry attempts (attempt index > 0) against a source's collector.",
			"source")
		m.stateCounters = make([][3]*obs.Counter, len(sources))
		for i, s := range sources {
			m.stateCounters[i] = [3]*obs.Counter{
				states.With(s.Name, string(SourceFresh)),
				states.With(s.Name, string(SourceStale)),
				states.With(s.Name, string(SourceMissing)),
			}
			if s.Retry != nil {
				// Chain the retry counter onto the caller's policy without
				// mutating their value: the collector owns this copy.
				p := *s.Retry
				counter := retries.With(s.Name)
				prev := p.OnAttempt
				p.OnAttempt = func(attempt int) {
					if attempt > 0 {
						counter.Inc()
					}
					if prev != nil {
						prev(attempt)
					}
				}
				m.sources[i].Retry = &p
			}
		}
	}
	return m, nil
}

// AllRequired wraps plain collectors as required sources named src0..srcN —
// the old all-or-nothing MultiCollector semantics.
func AllRequired(collectors ...Collector) ([]Source, error) {
	if len(collectors) == 0 {
		return nil, fmt.Errorf("core: empty multi collector")
	}
	out := make([]Source, len(collectors))
	for i, c := range collectors {
		out[i] = Source{Name: fmt.Sprintf("src%d", i), Collector: c, Required: true}
	}
	return out, nil
}

// SourceHistory returns the retained last-good history of one source, for
// windowed queries over a flaky feed; ok is false for unknown names.
func (m *MultiCollector) SourceHistory(name string) (*sensor.History, bool) {
	for i, s := range m.sources {
		if s.Name == name {
			return m.history[i], true
		}
	}
	return nil, false
}

// Collect implements Collector: the strict entry point. Degraded-but-
// serviceable contexts (every required source fresh or within budget) are
// returned; a missing required source is an error, wrapping the source's
// failure so breaker-open conditions (with their retry-after) surface to
// the serving layer.
func (m *MultiCollector) Collect(ctx context.Context) (sensor.Snapshot, error) {
	snap, prov, err := m.CollectDetailed(ctx)
	if err != nil {
		return sensor.Snapshot{}, err
	}
	if missing := prov.MissingRequired(); len(missing) > 0 {
		cause := firstError(prov, missing)
		if cause != nil {
			return sensor.Snapshot{}, fmt.Errorf("core: required source(s) %s unavailable: %w",
				strings.Join(missing, ", "), cause)
		}
		return sensor.Snapshot{}, fmt.Errorf("core: required source(s) %s unavailable",
			strings.Join(missing, ", "))
	}
	return snap, nil
}

// firstError returns the error of the lowest-declared missing source.
func firstError(prov Provenance, missing []string) error {
	for _, s := range prov {
		for _, name := range missing {
			if s.Name == name && s.cause != nil {
				return s.cause
			}
		}
	}
	return nil
}

// CollectDetailed implements DetailedCollector: it polls every source
// concurrently, applies retry policies and breakers, serves bounded-stale
// fallbacks, and returns the merged snapshot with its provenance. The
// returned error is non-nil only when not a single source contributed —
// there is no context at all to judge against.
func (m *MultiCollector) CollectDetailed(ctx context.Context) (sensor.Snapshot, Provenance, error) {
	n := len(m.sources)
	type result struct {
		snap sensor.Snapshot
		err  error
	}
	// The fan-out runs without m.mu; only the history/fallback bookkeeping
	// below is serialised.
	results, _ := par.Map(n, n, func(i int) (result, error) {
		src := m.sources[i]
		if src.Breaker != nil {
			if err := src.Breaker.Allow(); err != nil {
				return result{err: err}, nil
			}
		}
		var snap sensor.Snapshot
		var err error
		collect := func(ctx context.Context) error {
			s, e := src.Collector.Collect(ctx)
			if e != nil {
				return e
			}
			snap = s
			return nil
		}
		if src.Retry != nil {
			err = src.Retry.Do(ctx, collect)
		} else {
			err = collect(ctx)
		}
		if src.Breaker != nil {
			src.Breaker.Record(err)
		}
		if err != nil {
			return result{err: fmt.Errorf("core: source %q: %w", src.Name, err)}, nil
		}
		return result{snap: snap}, nil
	})

	now := m.now()
	prov := make(Provenance, n)
	merged := sensor.NewSnapshot(time.Time{})
	served := 0

	m.mu.Lock()
	for i, src := range m.sources {
		res := results[i]
		status := SourceStatus{Name: src.Name, Required: src.Required}
		switch {
		case res.err == nil:
			status.State = SourceFresh
			if m.trust != nil {
				// Score the raw collect under the merge lock so the
				// observation order matches declaration order. The event
				// time is the snapshot's own stamp (a spoofer replaying
				// history is caught); an unstamped snapshot falls back to
				// the collect clock.
				at := res.snap.At
				if at.IsZero() {
					at = now
				}
				m.trust.Observe(src.Name, res.snap, at)
			}
			// Out-of-order pushes (a byzantine source replaying old
			// timestamps) are ignored; the fallback keeps the newer one.
			_ = m.history[i].Push(res.snap)
			m.lastAt[i] = now
			m.hasLast[i] = true
		default:
			status.Err = res.err.Error()
			status.cause = res.err
			last, ok := m.history[i].Latest()
			age := now.Sub(m.lastAt[i])
			if ok && m.hasLast[i] && src.Staleness > 0 && age <= src.Staleness {
				status.State = SourceStale
				status.Age = age
				res.snap = last
				res.err = nil
			} else {
				status.State = SourceMissing
			}
		}
		if res.err == nil {
			merged = merged.Merge(res.snap)
			served++
		}
		if m.trust != nil {
			status.Trust = m.trust.ScoreIdx(m.trustIdx[i])
			status.LowTrust = !m.trust.TrustedIdx(m.trustIdx[i])
		}
		prov[i] = status
		if m.stateCounters != nil {
			m.stateCounters[i][provenanceIdx(status.State)].Inc()
		}
		if m.health != nil {
			m.health.Report(src.Name, string(status.State), breakerState(src.Breaker), now, status.cause)
		}
	}
	m.mu.Unlock()

	// The merged timestamp is the max of the contributing snapshots'
	// timestamps (a regression against the old time.Time{} stamping); with
	// no contributors at all there is no context to serve.
	if served == 0 {
		cause := firstError(prov, missingNames(prov))
		if cause != nil {
			return sensor.Snapshot{}, prov, fmt.Errorf("core: every source failed: %w", cause)
		}
		return sensor.Snapshot{}, prov, errors.New("core: every source failed")
	}
	return merged, prov, nil
}

func missingNames(prov Provenance) []string {
	var out []string
	for _, s := range prov {
		if s.State == SourceMissing {
			out = append(out, s.Name)
		}
	}
	return out
}

func breakerState(b *resilience.Breaker) string {
	if b == nil {
		return ""
	}
	return b.State().String()
}
