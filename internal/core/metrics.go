package core

import (
	"time"

	"iotsid/internal/obs"
	"iotsid/internal/resilience"
)

// Metric names the core layer owns. The naming scheme (DESIGN
// §Observability): iotsid_<subsystem>_<what>_<unit|total>, label values
// carry the variable part (outcome, source, state) so family cardinality
// stays fixed and every series can be pre-registered.
const (
	metricDecisions    = "iotsid_authz_decisions_total"
	metricSeqAnomalies = "iotsid_authz_seq_anomalies_total"
	metricAuthzLatency = "iotsid_authz_latency_seconds"
	metricBatches      = "iotsid_authz_batches_total"
	metricLogAppends   = "iotsid_decision_log_appends_total"
	metricLogEvictions = "iotsid_decision_log_evictions_total"
	metricSourceState  = "iotsid_collector_source_collects_total"
	metricRetries      = "iotsid_collector_retry_attempts_total"
	metricCache        = "iotsid_cache_collects_total"
	metricBreaker      = "iotsid_breaker_transitions_total"
)

// Decision outcome indices for the pre-registered counter matrix.
const (
	outcomeAllow = iota
	outcomeReject
	outcomeFailClosed
	outcomeCount
)

// frameworkMetrics holds the framework's pre-registered series: a direct
// pointer per (outcome, sensitivity) cell plus the latency histogram, so
// the Authorize hot path counts itself with two atomic adds and zero
// lookups. A nil *frameworkMetrics disables instrumentation entirely —
// every method is nil-receiver safe.
type frameworkMetrics struct {
	decisions    [outcomeCount][2]*obs.Counter // [outcome][sensitive]
	latency      *obs.Histogram
	batches      *obs.Counter
	seqAnomalies *obs.Counter
}

// newFrameworkMetrics pre-registers the authorization series.
func newFrameworkMetrics(reg *obs.Registry) *frameworkMetrics {
	if reg == nil {
		return nil
	}
	dec := reg.NewCounterVec(metricDecisions,
		"Authorization decisions by outcome (allow, reject, fail_closed) and instruction sensitivity.",
		"outcome", "sensitive")
	m := &frameworkMetrics{
		latency: reg.NewHistogram(metricAuthzLatency,
			"End-to-end Framework.Authorize latency (collect + judge + log), seconds.",
			obs.LatencyBuckets),
		batches: reg.NewCounter(metricBatches,
			"AuthorizeBatch invocations (each also counts one latency observation)."),
		seqAnomalies: reg.NewCounter(metricSeqAnomalies,
			"Sensitive instructions rejected by the sequence judge after the static tree allowed them."),
	}
	names := [outcomeCount]string{"allow", "reject", "fail_closed"}
	for o := 0; o < outcomeCount; o++ {
		m.decisions[o][0] = dec.With(names[o], "false")
		m.decisions[o][1] = dec.With(names[o], "true")
	}
	return m
}

// boolIdx maps a sensitivity flag onto the counter matrix column.
func boolIdx(b bool) int {
	if b {
		return 1
	}
	return 0
}

// observeDecision counts one judged decision.
func (m *frameworkMetrics) observeDecision(dec Decision) {
	if m == nil {
		return
	}
	o := outcomeReject
	if dec.Allowed {
		o = outcomeAllow
	}
	m.decisions[o][boolIdx(dec.Sensitive)].Inc()
}

// observeFailClosed counts one fail-closed rejection (always sensitive).
func (m *frameworkMetrics) observeFailClosed() {
	if m == nil {
		return
	}
	m.decisions[outcomeFailClosed][1].Inc()
}

// observeSeqAnomaly counts one sequence-judge rejection.
func (m *frameworkMetrics) observeSeqAnomaly() {
	if m == nil {
		return
	}
	m.seqAnomalies.Inc()
}

// observeLatency records one Authorize round trip.
func (m *frameworkMetrics) observeLatency(d time.Duration) {
	if m == nil {
		return
	}
	m.latency.Observe(d.Seconds())
}

// observeBatch counts one AuthorizeBatch call.
func (m *frameworkMetrics) observeBatch() {
	if m == nil {
		return
	}
	m.batches.Inc()
}

// BreakerTransitionHook returns a resilience.BreakerConfig.OnStateChange
// hook that counts transitions into iotsid_breaker_transitions_total,
// labeled by breaker name and target state. The three target-state series
// are pre-registered here, so the hook itself (which runs under the
// breaker's lock) is two array index loads and an atomic add.
func BreakerTransitionHook(reg *obs.Registry, name string) func(from, to resilience.State) {
	if reg == nil {
		return nil
	}
	vec := reg.NewCounterVec(metricBreaker,
		"Circuit breaker state transitions by breaker name and target state.",
		"name", "to")
	var cells [3]*obs.Counter
	cells[resilience.StateClosed] = vec.With(name, "closed")
	cells[resilience.StateOpen] = vec.With(name, "open")
	cells[resilience.StateHalfOpen] = vec.With(name, "half_open")
	return func(_, to resilience.State) {
		if int(to) >= 0 && int(to) < len(cells) {
			cells[to].Inc()
		}
	}
}

// cacheMetrics is the CachedCollector's pre-registered result counters.
type cacheMetrics struct {
	hits      *obs.Counter // served from the fresh snapshot
	misses    *obs.Counter // led an inner collect
	coalesced *obs.Counter // waited on another caller's in-flight collect
	stale     *obs.Counter // served the bounded-stale fallback after an error
	errors    *obs.Counter // inner collect failed with no fallback
}

// newCacheMetrics pre-registers the cache result series.
func newCacheMetrics(reg *obs.Registry) *cacheMetrics {
	if reg == nil {
		return nil
	}
	vec := reg.NewCounterVec(metricCache,
		"CachedCollector results: hit, miss (led the inner collect), coalesced (shared an in-flight collect), stale (serve-stale-on-error fallback), error.",
		"result")
	return &cacheMetrics{
		hits:      vec.With("hit"),
		misses:    vec.With("miss"),
		coalesced: vec.With("coalesced"),
		stale:     vec.With("stale"),
		errors:    vec.With("error"),
	}
}

// The increment taps are nil-receiver safe like everything else in the
// instrumentation layer, so the cache's hot path pays one branch when
// uninstrumented.
func (m *cacheMetrics) hit() {
	if m != nil {
		m.hits.Inc()
	}
}
func (m *cacheMetrics) miss() {
	if m != nil {
		m.misses.Inc()
	}
}
func (m *cacheMetrics) coalesce() {
	if m != nil {
		m.coalesced.Inc()
	}
}
func (m *cacheMetrics) staleServe() {
	if m != nil {
		m.stale.Inc()
	}
}
func (m *cacheMetrics) err() {
	if m != nil {
		m.errors.Inc()
	}
}
