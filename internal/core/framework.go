package core

import (
	"fmt"
	"sync"

	"iotsid/internal/instr"
	"iotsid/internal/sensor"
	"iotsid/internal/trace"
)

// Framework is the assembled IDS of Fig 3: detector → collector → feature
// memory → determiner. It exposes the two integration surfaces the rest of
// the system uses: Authorize (collect live context, then judge) and Gate /
// Interceptor adapters for the vendor bridges and the automation engine.
type Framework struct {
	detector  *Detector
	collector Collector
	memory    *FeatureMemory
	judger    *Judger

	mu    sync.Mutex
	log   []LogEntry
	audit *trace.Log
}

// LogEntry records one authorisation.
type LogEntry struct {
	Op       string   `json:"op"`
	DeviceID string   `json:"device_id"`
	Decision Decision `json:"decision"`
}

// Config wires a framework.
type Config struct {
	Detector  *Detector
	Collector Collector
	Memory    *FeatureMemory
}

// New assembles the framework.
func New(cfg Config) (*Framework, error) {
	if cfg.Collector == nil {
		return nil, fmt.Errorf("core: framework needs a collector")
	}
	j, err := NewJudger(cfg.Detector, cfg.Memory)
	if err != nil {
		return nil, err
	}
	return &Framework{
		detector:  cfg.Detector,
		collector: cfg.Collector,
		memory:    cfg.Memory,
		judger:    j,
	}, nil
}

// SetAuditLog attaches (or detaches) an audit trace: every authorisation
// decision is appended to it as a trace.KindDecision event.
func (f *Framework) SetAuditLog(l *trace.Log) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.audit = l
}

// Memory exposes the trained feature memory.
func (f *Framework) Memory() *FeatureMemory { return f.memory }

// Detector exposes the sensitive command detector.
func (f *Framework) Detector() *Detector { return f.detector }

// Authorize collects the live sensor context and judges the instruction —
// the full runtime path of Fig 3.
func (f *Framework) Authorize(in instr.Instruction) (Decision, error) {
	ctx, err := f.collector.Collect()
	if err != nil {
		return Decision{}, fmt.Errorf("core: collect context: %w", err)
	}
	return f.judgeAndLog(in, ctx)
}

// Judge decides against a caller-supplied context (used when the caller
// already holds the snapshot, e.g. the automation engine's evaluation
// context).
func (f *Framework) Judge(in instr.Instruction, ctx sensor.Snapshot) (Decision, error) {
	return f.judgeAndLog(in, ctx)
}

func (f *Framework) judgeAndLog(in instr.Instruction, ctx sensor.Snapshot) (Decision, error) {
	dec, err := f.judger.Judge(in, ctx)
	if err != nil {
		return Decision{}, err
	}
	f.mu.Lock()
	f.log = append(f.log, LogEntry{Op: in.Op, DeviceID: in.DeviceID, Decision: dec})
	audit := f.audit
	f.mu.Unlock()
	if audit != nil {
		outcome := "allowed"
		if !dec.Allowed {
			outcome = "rejected"
		}
		fields := map[string]string{"origin": in.Origin.String()}
		if dec.Model != "" {
			fields["model"] = string(dec.Model)
		}
		audit.Append(trace.Event{
			Kind:     trace.KindDecision,
			DeviceID: in.DeviceID,
			Op:       in.Op,
			Outcome:  outcome,
			Detail:   dec.Reason,
			At:       ctx.At,
			Fields:   fields,
		})
	}
	return dec, nil
}

// Log returns a copy of the authorisation log.
func (f *Framework) Log() []LogEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]LogEntry, len(f.log))
	copy(out, f.log)
	return out
}

// Gate adapts the framework to the vendor bridges' gate signature: a
// non-nil error blocks execution.
func (f *Framework) Gate(in instr.Instruction, ctx sensor.Snapshot) error {
	dec, err := f.judgeAndLog(in, ctx)
	if err != nil {
		return err
	}
	if !dec.Allowed {
		return fmt.Errorf("ids: %s", dec.Reason)
	}
	return nil
}

// Interceptor adapts the framework to the automation engine. Judgment
// errors fail closed for sensitive instructions: an unjudgeable sensitive
// command must not run.
func (f *Framework) Interceptor() func(in instr.Instruction, ctx sensor.Snapshot) (bool, string) {
	return func(in instr.Instruction, ctx sensor.Snapshot) (bool, string) {
		dec, err := f.judgeAndLog(in, ctx)
		if err != nil {
			if f.detector.IsSensitive(in) {
				return false, fmt.Sprintf("ids: cannot judge sensitive instruction: %v", err)
			}
			return true, fmt.Sprintf("ids: judgment unavailable (%v); non-sensitive instruction allowed", err)
		}
		return dec.Allowed, dec.Reason
	}
}
