package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"iotsid/internal/instr"
	"iotsid/internal/obs"
	"iotsid/internal/sensor"
	"iotsid/internal/seq"
	"iotsid/internal/trace"
)

// Framework is the assembled IDS of Fig 3: detector → collector → feature
// memory → determiner. It exposes the two integration surfaces the rest of
// the system uses: Authorize (collect live context, then judge) and Gate /
// Interceptor adapters for the vendor bridges and the automation engine.
type Framework struct {
	detector  *Detector
	collector Collector
	memory    *FeatureMemory
	judger    *Judger

	log     *decisionLog
	audit   atomic.Pointer[trace.Log]
	metrics *frameworkMetrics
	now     func() time.Time

	// Sequence judge (second detection axis, ROADMAP item 1): trained
	// transition tables plus this home's bounded event-history ring. nil
	// seq disables the axis entirely — the static tree stands alone.
	seq      *seq.Set
	seqTrack seq.Tracker
	seqAnoms atomic.Uint64
}

// LogEntry records one authorisation. Seq is a process-wide sequence number
// ordering entries across the log's shards.
type LogEntry struct {
	Seq      uint64   `json:"seq"`
	Op       string   `json:"op"`
	DeviceID string   `json:"device_id"`
	Decision Decision `json:"decision"`
}

// Config wires a framework.
type Config struct {
	Detector  *Detector
	Collector Collector
	Memory    *FeatureMemory
	// LogCapacity bounds the decision log's ring buffer; 0 means the
	// default (4096 entries). The log retains the newest entries.
	LogCapacity int
	// Metrics, when non-nil, instruments the framework: decision counts by
	// outcome and sensitivity, Authorize latency, and decision-log
	// append/eviction counts. Every series is pre-registered here, so the
	// hot path stays allocation-free.
	Metrics *obs.Registry
	// Now is the latency clock (injectable so histogram tests are
	// deterministic); defaults to time.Now.
	Now func() time.Time
	// Sequence, when non-nil, arms the temporal sequence judge: every
	// decision is folded into a bounded per-framework history ring, and a
	// sensitive instruction must pass BOTH the compiled tree and the
	// sequence judge (fail closed on anomaly).
	Sequence *seq.Set
}

// New assembles the framework.
func New(cfg Config) (*Framework, error) {
	if cfg.Collector == nil {
		return nil, fmt.Errorf("core: framework needs a collector")
	}
	// A nil *FeatureMemory must stay a nil ModelStore, not a typed-nil
	// interface, so NewJudger's validation still fires.
	var store ModelStore
	if cfg.Memory != nil {
		store = cfg.Memory
	}
	j, err := NewJudger(cfg.Detector, store)
	if err != nil {
		return nil, err
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	f := &Framework{
		detector:  cfg.Detector,
		collector: cfg.Collector,
		memory:    cfg.Memory,
		judger:    j,
		log:       newDecisionLog(cfg.LogCapacity),
		metrics:   newFrameworkMetrics(cfg.Metrics),
		now:       cfg.Now,
		seq:       cfg.Sequence,
	}
	if cfg.Metrics != nil {
		f.log.instrument(
			cfg.Metrics.NewCounter(metricLogAppends,
				"Entries appended to the sharded authorization decision log."),
			cfg.Metrics.NewCounter(metricLogEvictions,
				"Oldest entries overwritten (dropped) by the decision log's bounded ring."),
		)
	}
	return f, nil
}

// SetAuditLog attaches (or detaches) an audit trace: every authorisation
// decision is appended to it as a trace.KindDecision event.
func (f *Framework) SetAuditLog(l *trace.Log) {
	f.audit.Store(l)
}

// Memory exposes the trained feature memory.
func (f *Framework) Memory() *FeatureMemory { return f.memory }

// Detector exposes the sensitive command detector.
func (f *Framework) Detector() *Detector { return f.detector }

// Authorize collects the live sensor context and judges the instruction —
// the full runtime path of Fig 3. The context bounds the collection round
// trip.
//
// Degraded mode: when the collector reports per-source provenance (a
// DetailedCollector, e.g. MultiCollector) and a required source is missing
// or beyond its staleness budget, sensitive instructions fail closed with
// an explicit rejection while non-sensitive instructions still judge
// against the partial context — the explicit choice between bounded
// staleness and failing closed, never crashing open.
//
//iot:hotpath
//iot:failclosed
func (f *Framework) Authorize(ctx context.Context, in instr.Instruction) (Decision, error) {
	start := f.now()
	snap, prov, err := f.collect(ctx)
	if err != nil {
		//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
		return Decision{}, fmt.Errorf("core: collect context: %w", err)
	}
	if dec, failed := f.failClosed(in, prov, snap); failed { //iot:allow hotcall fail-closed path is cold; the steady state returns before the missing-source scan allocates
		f.metrics.observeLatency(f.now().Sub(start))
		return dec, nil
	}
	//iot:allow hotcall audit-trace fields map is only built when the optional audit log is attached; production steady state runs with it off
	dec, err := f.judgeAndLog(in, snap)
	if err == nil {
		f.metrics.observeLatency(f.now().Sub(start))
	}
	return dec, err
}

// AuthorizeBatch collects the sensor context once and judges every
// instruction against that single snapshot — the amortised form of
// Authorize for callers draining a command queue. Decisions are returned in
// input order; the first judgment error aborts the batch.
//
//iot:failclosed
func (f *Framework) AuthorizeBatch(ctx context.Context, ins []instr.Instruction) ([]Decision, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	start := f.now()
	snap, prov, err := f.collect(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: collect context: %w", err)
	}
	f.metrics.observeBatch()
	defer func() { f.metrics.observeLatency(f.now().Sub(start)) }()
	out := make([]Decision, len(ins))
	for i, in := range ins {
		if dec, failed := f.failClosed(in, prov, snap); failed {
			out[i] = dec
			continue
		}
		dec, err := f.judgeAndLog(in, snap)
		if err != nil {
			return nil, fmt.Errorf("core: batch instruction %d (%s): %w", i, in.Op, err)
		}
		out[i] = dec
	}
	return out, nil
}

// collect prefers the provenance-reporting path when the collector offers
// it.
func (f *Framework) collect(ctx context.Context) (sensor.Snapshot, Provenance, error) {
	if dc, ok := f.collector.(DetailedCollector); ok {
		return dc.CollectDetailed(ctx)
	}
	snap, err := f.collector.Collect(ctx)
	return snap, nil, err
}

// reasonLowTrust is the static (interned) fail-closed reason for the
// low-trust path: the hot path must reject without building a string.
const reasonLowTrust = "sensitive instruction rejected (fail closed): required sensor source(s) below trust threshold"

// reasonSeqAnomaly is the static (interned) rejection reason when the
// sequence judge flags a sensitive instruction the static tree allowed.
const reasonSeqAnomaly = "sensitive instruction rejected (fail closed): instruction sequence outside trained temporal profile"

// reasonMissing is the static (interned) rejection reason when a required
// source contributed nothing; the per-decision source list goes in
// Explanation so the Reason string stays interned (failclosed analyzer
// rule).
const reasonMissing = "sensitive instruction rejected (fail closed): required sensor source(s) unavailable"

// failClosed rejects a sensitive instruction when a required context
// source contributed nothing — deciding blind on a sensitive command is
// exactly what the attacker of §III-A wants — or when a required source's
// trust score fell below threshold: fresh-but-fabricated context is the
// sensor-spoofing twin of no context at all. The rejection is a logged
// decision, not an error: the caller gets a definitive "no".
//
//iot:failclosed
func (f *Framework) failClosed(in instr.Instruction, prov Provenance, at sensor.Snapshot) (Decision, bool) {
	missing := prov.MissingRequired()
	lowTrust := prov.LowTrustRequired()
	if (len(missing) == 0 && len(lowTrust) == 0) || !f.detector.IsSensitive(in) {
		return Decision{}, false
	}
	dec := Decision{Allowed: false, Sensitive: true, Reason: reasonLowTrust}
	if len(missing) > 0 {
		dec.Reason = reasonMissing
		dec.Explanation = in.Op + " blocked; missing required source(s): " + strings.Join(missing, ", ")
	}
	f.metrics.observeFailClosed()
	f.logDecision(in, dec, at)
	return dec, true
}

// Judge decides against a caller-supplied context (used when the caller
// already holds the snapshot, e.g. the automation engine's evaluation
// context).
func (f *Framework) Judge(in instr.Instruction, ctx sensor.Snapshot) (Decision, error) {
	return f.judgeAndLog(in, ctx)
}

//iot:failclosed
func (f *Framework) judgeAndLog(in instr.Instruction, ctx sensor.Snapshot) (Decision, error) {
	dec, err := f.judger.Judge(in, ctx)
	if err != nil {
		return Decision{}, err
	}
	if f.seq != nil {
		// Combined verdict, fail closed: the sequence judge can only
		// revoke an allow, never grant one. Every admitted event — allowed
		// sensitive or not — extends the history the next judgment sees.
		at := ctx.At
		if at.IsZero() {
			at = f.now()
		}
		if v := f.seq.ObserveJudge(&f.seqTrack, dec.Model, dec.Sensitive, dec.Allowed, ctx, at); v.Anomalous {
			dec = Decision{Allowed: false, Sensitive: true, Model: dec.Model, Reason: reasonSeqAnomaly}
			f.seqAnoms.Add(1)
			f.metrics.observeSeqAnomaly()
		}
	}
	f.metrics.observeDecision(dec)
	f.logDecision(in, dec, ctx)
	return dec, nil
}

// SeqAnomalies reports how many sensitive instructions the sequence judge
// rejected after the static tree allowed them.
func (f *Framework) SeqAnomalies() uint64 { return f.seqAnoms.Load() }

// logDecision appends a decision to the ring log and the audit trace.
func (f *Framework) logDecision(in instr.Instruction, dec Decision, ctx sensor.Snapshot) {
	f.log.append(LogEntry{Op: in.Op, DeviceID: in.DeviceID, Decision: dec})
	if audit := f.audit.Load(); audit != nil {
		outcome := "allowed"
		if !dec.Allowed {
			outcome = "rejected"
		}
		fields := map[string]string{"origin": in.Origin.String()}
		if dec.Model != "" {
			fields["model"] = string(dec.Model)
		}
		audit.Append(trace.Event{
			Kind:     trace.KindDecision,
			DeviceID: in.DeviceID,
			Op:       in.Op,
			Outcome:  outcome,
			Detail:   dec.Reason,
			At:       ctx.At,
			Fields:   fields,
		})
	}
}

// Log returns a copy of the retained authorisation log, oldest first. The
// log is a bounded ring: once more decisions have been made than the
// configured capacity, only the newest survive.
func (f *Framework) Log() []LogEntry {
	return f.log.snapshot()
}

// LogRecent returns the newest n retained entries, oldest first — the
// cheap way to peek at recent traffic without copying the whole ring.
func (f *Framework) LogRecent(n int) []LogEntry {
	return f.log.recent(n)
}

// Gate adapts the framework to the vendor bridges' gate signature: a
// non-nil error blocks execution.
func (f *Framework) Gate(in instr.Instruction, ctx sensor.Snapshot) error {
	dec, err := f.judgeAndLog(in, ctx)
	if err != nil {
		return err
	}
	if !dec.Allowed {
		return fmt.Errorf("ids: %s", dec.Reason)
	}
	return nil
}

// Interceptor adapts the framework to the automation engine. Judgment
// errors fail closed for sensitive instructions: an unjudgeable sensitive
// command must not run.
func (f *Framework) Interceptor() func(in instr.Instruction, ctx sensor.Snapshot) (bool, string) {
	return func(in instr.Instruction, ctx sensor.Snapshot) (bool, string) {
		dec, err := f.judgeAndLog(in, ctx)
		if err != nil {
			if f.detector.IsSensitive(in) {
				return false, fmt.Sprintf("ids: cannot judge sensitive instruction: %v", err)
			}
			return true, fmt.Sprintf("ids: judgment unavailable (%v); non-sensitive instruction allowed", err)
		}
		return dec.Allowed, dec.Reason
	}
}
