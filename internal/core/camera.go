package core

import (
	"fmt"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/sensor"
)

// Warning is one camera-linked user alert (§V, Fig 7).
type Warning struct {
	Trigger dataset.WarnTrigger `json:"trigger"`
	Message string              `json:"message"`
	At      time.Time           `json:"at"`
}

// CameraWarner implements the security-camera linkage: the paper's survey
// of 319 camera strategies (Fig 7) shows users want warnings when doors or
// windows open, when smoke/fire, water or gas sensors trip, and on motion
// while nobody is home. The warner watches successive snapshots and emits a
// warning on each rising edge of those conditions.
type CameraWarner struct {
	prev    sensor.Snapshot
	primed  bool
	history []Warning
}

// NewCameraWarner returns an unprimed warner; the first Observe only
// establishes the baseline.
func NewCameraWarner() *CameraWarner {
	return &CameraWarner{}
}

// Observe processes the next snapshot and returns the warnings it raised.
func (w *CameraWarner) Observe(snap sensor.Snapshot) []Warning {
	defer func() {
		w.prev = snap
		w.primed = true
	}()
	if !w.primed {
		return nil
	}
	var out []Warning
	emit := func(trigger dataset.WarnTrigger, msg string) {
		warning := Warning{Trigger: trigger, Message: msg, At: snap.At}
		out = append(out, warning)
		w.history = append(w.history, warning)
	}
	rose := func(f sensor.Feature) bool {
		return snap.Bool(f) && !w.prev.Bool(f)
	}
	if rose(sensor.FeatDoorOpen) {
		emit(dataset.WarnDoorWindowOpened, "door opened")
	}
	if rose(sensor.FeatWindowOpen) {
		emit(dataset.WarnDoorWindowOpened, "window opened")
	}
	if rose(sensor.FeatSmoke) {
		emit(dataset.WarnSmokeFire, "smoke detected")
	}
	if rose(sensor.FeatWaterLeak) {
		emit(dataset.WarnWaterLeak, "water leak detected")
	}
	if rose(sensor.FeatGas) {
		emit(dataset.WarnGas, "combustible gas detected")
	}
	if rose(sensor.FeatMotion) && !snap.Bool(sensor.FeatOccupancy) {
		emit(dataset.WarnMotion, "motion while nobody is home")
	}
	return out
}

// History returns every warning raised so far.
func (w *CameraWarner) History() []Warning {
	out := make([]Warning, len(w.history))
	copy(out, w.history)
	return out
}

// Stats tallies warnings per trigger.
func (w *CameraWarner) Stats() map[dataset.WarnTrigger]int {
	out := make(map[dataset.WarnTrigger]int)
	for _, warning := range w.history {
		out[warning.Trigger]++
	}
	return out
}

// String renders a warning for logs.
func (w Warning) String() string {
	return fmt.Sprintf("[%s] %s", w.Trigger, w.Message)
}
