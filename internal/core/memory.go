package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"iotsid/internal/dataset"
	"iotsid/internal/mlearn"
	"iotsid/internal/mlearn/tree"
	"iotsid/internal/par"
	"iotsid/internal/sensor"
)

// Sampling selects the class-imbalance fix applied to training data.
type Sampling int

// Sampling strategies (§IV-C-2 picks oversampling).
const (
	SampleRandomOversample Sampling = iota + 1
	SampleSMOTE
	SampleNone
)

// String names the strategy.
func (s Sampling) String() string {
	switch s {
	case SampleRandomOversample:
		return "random_oversample"
	case SampleSMOTE:
		return "smote"
	case SampleNone:
		return "none"
	default:
		return fmt.Sprintf("sampling(%d)", int(s))
	}
}

// TrainConfig tunes the feature-memory training pipeline.
type TrainConfig struct {
	Seed       int64
	Tree       tree.Config
	SplitRatio float64  // train share; default 0.7 (the paper's 7:3)
	Sampling   Sampling // default random oversampling
	KFold      int      // cross-validation folds; default 5
	// Workers bounds the per-model training fan-out (and the per-fold
	// cross-validation fan-out inside each model); 0 means GOMAXPROCS.
	// Every parallel unit's seed is derived before the fan-out, so trained
	// memories are bit-identical for every worker count.
	Workers int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.SplitRatio == 0 {
		c.SplitRatio = 0.7
	}
	if c.Sampling == 0 {
		c.Sampling = SampleRandomOversample
	}
	if c.KFold == 0 {
		c.KFold = 5
	}
	if c.Tree.MinSamplesLeaf == 0 {
		c.Tree.MinSamplesLeaf = 5
	}
	return c
}

// Report records how one device model trained and evaluated — the raw
// material of Table VI.
type Report struct {
	Model         dataset.Model `json:"model"`
	TrainExamples int           `json:"train_examples"`
	TestExamples  int           `json:"test_examples"`
	TrainAccuracy float64       `json:"train_accuracy"`
	TestAccuracy  float64       `json:"test_accuracy"`
	Recall        float64       `json:"recall"`
	Precision     float64       `json:"precision"`
	FPR           float64       `json:"fpr"`
	FNR           float64       `json:"fnr"`
	CVMeanAcc     float64       `json:"cv_mean_accuracy"`
	CVStdAcc      float64       `json:"cv_std_accuracy"`
}

// Entry is one device model's slot in the feature memory: the trained tree,
// its feature weights (Fig 6) and its evaluation report. Alongside the
// explaining tree the entry holds a compiled form of it plus a pool of
// feature buffers — the zero-allocation pair Judge runs on.
type Entry struct {
	Tree    *tree.Tree    `json:"tree"`
	Weights []tree.Weight `json:"weights"`
	Report  Report        `json:"report"`

	compiled *tree.Compiled
	bufs     *sync.Pool // of *[]float64 sized to the tree's schema
}

// compile flattens the entry's tree and sizes its buffer pool. Every path
// that stores an entry (Train, Put, Load) calls this before the entry is
// published, so readers see the fields without synchronisation.
func (e *Entry) compile() error {
	c, err := e.Tree.Compile()
	if err != nil {
		return err
	}
	width := c.Width()
	e.compiled = c
	e.bufs = &sync.Pool{New: func() any {
		buf := make([]float64, width)
		return &buf
	}}
	return nil
}

// Compiled exposes the flattened inference tree (nil only for an entry that
// was never stored through the memory's API).
func (e *Entry) Compiled() *tree.Compiled { return e.compiled }

// JudgeSnapshot runs the entry's compiled tree on a live snapshot: true
// means the context matches a legal activity scene. This is the shared
// zero-allocation judge every model store (the single-home FeatureMemory
// and the fleet's copy-on-write registry) dispatches to: the feature vector
// comes from the entry's buffer pool, FeaturizeInto fills it in place, and
// the flattened tree is walked without pointer chasing.
//
//iot:hotpath
func (e *Entry) JudgeSnapshot(m dataset.Model, ctx sensor.Snapshot) (bool, error) {
	bufp := e.bufs.Get().(*[]float64)
	err := m.FeaturizeInto(ctx, *bufp)
	if err != nil {
		e.bufs.Put(bufp)
		//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
		return false, fmt.Errorf("core: featurize context for %s: %w", m, err)
	}
	legal := e.compiled.Predict(*bufp) == 1
	e.bufs.Put(bufp)
	return legal, nil
}

// ExplainSnapshot judges a snapshot with the explaining tree and returns
// the decision path it took — the slow, allocating twin of JudgeSnapshot
// used when a human will read the verdict.
func (e *Entry) ExplainSnapshot(m dataset.Model, ctx sensor.Snapshot) (bool, string, error) {
	x, err := m.Featurize(ctx)
	if err != nil {
		return false, "", fmt.Errorf("core: featurize context for %s: %w", m, err)
	}
	path, err := e.Tree.ExplainString(x)
	if err != nil {
		return false, "", err
	}
	return e.Tree.Predict(x) == 1, path, nil
}

// FeatureMemory is the command sensor context feature memory (§IV-C): one
// trained decision tree per sensitive device model, with stored feature
// weights. Safe for concurrent use.
type FeatureMemory struct {
	mu      sync.RWMutex
	entries map[dataset.Model]*Entry
}

// NewFeatureMemory returns an empty memory.
func NewFeatureMemory() *FeatureMemory {
	return &FeatureMemory{entries: make(map[dataset.Model]*Entry)}
}

// Train builds the full memory from the strategy corpus: per device model,
// build the dataset, split 7:3 stratified, fix the class imbalance on the
// training split, grow the tree, cross-validate, and store tree + weights.
// The six models train concurrently on tcfg.Workers goroutines; per-model
// seeds are derived from the model index before the fan-out, so the trained
// memory is bit-identical to a serial run.
func Train(corpus []dataset.Strategy, bcfg dataset.BuildConfig, tcfg TrainConfig) (*FeatureMemory, error) {
	tcfg = tcfg.withDefaults()
	if bcfg.Workers == 0 {
		bcfg.Workers = tcfg.Workers
	}
	all, err := dataset.BuildAll(corpus, bcfg)
	if err != nil {
		return nil, err
	}
	models := dataset.Models()
	entries, err := par.Map(len(models), tcfg.Workers, func(i int) (*Entry, error) {
		m := models[i]
		entry, err := trainModel(m, all[m], tcfg, tcfg.Seed+int64(i)*104729)
		if err != nil {
			return nil, fmt.Errorf("train %s: %w", m, err)
		}
		return entry, nil
	})
	if err != nil {
		return nil, err
	}
	fm := NewFeatureMemory()
	for i, m := range models {
		fm.entries[m] = entries[i]
	}
	return fm, nil
}

// TrainModel trains a single model entry from a prebuilt dataset (used by
// ablation benchmarks and tests).
func TrainModel(m dataset.Model, d *mlearn.Dataset, tcfg TrainConfig) (*Entry, error) {
	tcfg = tcfg.withDefaults()
	return trainModel(m, d, tcfg, tcfg.Seed)
}

func trainModel(m dataset.Model, d *mlearn.Dataset, tcfg TrainConfig, seed int64) (*Entry, error) {
	rng := rand.New(rand.NewSource(seed))
	train, test, err := d.SplitStratified(tcfg.SplitRatio, rng)
	if err != nil {
		return nil, err
	}
	balanced, err := resample(train, tcfg.Sampling, rng)
	if err != nil {
		return nil, err
	}
	tr := tree.New(tcfg.Tree)
	if err := tr.Fit(balanced); err != nil {
		return nil, err
	}
	weights, err := tr.FeatureWeights()
	if err != nil {
		return nil, err
	}
	cv, err := mlearn.CrossValidateWorkers(func() mlearn.Classifier { return tree.New(tcfg.Tree) },
		balanced, tcfg.KFold, rng, tcfg.Workers)
	if err != nil {
		return nil, err
	}
	entry := &Entry{Tree: tr, Weights: weights}
	if err := entry.compile(); err != nil {
		return nil, err
	}
	testEval := mlearn.Evaluate(tr, test)
	entry.Report = Report{
		Model:         m,
		TrainExamples: balanced.Len(),
		TestExamples:  test.Len(),
		TrainAccuracy: mlearn.Evaluate(tr, balanced).Accuracy(),
		TestAccuracy:  testEval.Accuracy(),
		Recall:        testEval.Recall(),
		Precision:     testEval.Precision(),
		FPR:           testEval.FPR(),
		FNR:           testEval.FNR(),
		CVMeanAcc:     cv.MeanAccuracy(),
		CVStdAcc:      cv.StdAccuracy(),
	}
	return entry, nil
}

func resample(d *mlearn.Dataset, s Sampling, rng *rand.Rand) (*mlearn.Dataset, error) {
	switch s {
	case SampleRandomOversample:
		return mlearn.OversampleRandom(d, rng)
	case SampleSMOTE:
		return mlearn.OversampleSMOTE(d, 5, rng)
	case SampleNone:
		return d, nil
	default:
		return nil, fmt.Errorf("core: unknown sampling strategy %d", s)
	}
}

// Put stores an entry (replacing any previous one), compiling its tree for
// the inference fast path if that has not happened yet.
func (fm *FeatureMemory) Put(m dataset.Model, e *Entry) error {
	if e == nil || e.Tree == nil {
		return fmt.Errorf("core: nil entry for %s", m)
	}
	if e.compiled == nil {
		if err := e.compile(); err != nil {
			return fmt.Errorf("core: compile entry for %s: %w", m, err)
		}
	}
	fm.mu.Lock()
	defer fm.mu.Unlock()
	fm.entries[m] = e
	return nil
}

// Entry fetches one model's entry.
func (fm *FeatureMemory) Entry(m dataset.Model) (*Entry, bool) {
	fm.mu.RLock()
	defer fm.mu.RUnlock()
	e, ok := fm.entries[m]
	return e, ok
}

// Models lists the stored models in Table VI order.
func (fm *FeatureMemory) Models() []dataset.Model {
	fm.mu.RLock()
	defer fm.mu.RUnlock()
	var out []dataset.Model
	for _, m := range dataset.Models() {
		if _, ok := fm.entries[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

// Judge runs one model's compiled tree on a live snapshot: true means the
// context matches a legal activity scene. The steady-state path is
// allocation-free: the feature vector comes from the entry's buffer pool,
// FeaturizeInto fills it in place, and the flattened tree is walked without
// pointer chasing. Use JudgeExplain when the decision path is wanted.
//
//iot:hotpath
func (fm *FeatureMemory) Judge(m dataset.Model, ctx sensor.Snapshot) (bool, error) {
	e, ok := fm.Entry(m)
	if !ok {
		//iot:allow hotalloc error path, never taken steady-state; the AllocsPerRun gate proves the allow path is 0-alloc
		return false, fmt.Errorf("core: no trained model for %s", m)
	}
	return e.JudgeSnapshot(m, ctx)
}

// JudgeExplain judges a snapshot and also returns the decision path the
// tree took — the explanation a user sees for an interception.
func (fm *FeatureMemory) JudgeExplain(m dataset.Model, ctx sensor.Snapshot) (bool, string, error) {
	e, ok := fm.Entry(m)
	if !ok {
		return false, "", fmt.Errorf("core: no trained model for %s", m)
	}
	return e.ExplainSnapshot(m, ctx)
}

// memoryJSON is the persistence envelope.
type memoryJSON struct {
	Entries map[dataset.Model]*Entry `json:"entries"`
}

// Save serialises the memory as JSON.
func (fm *FeatureMemory) Save(w io.Writer) error {
	fm.mu.RLock()
	defer fm.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(memoryJSON{Entries: fm.entries})
}

// Load restores a memory previously written by Save.
func Load(r io.Reader) (*FeatureMemory, error) {
	var raw memoryJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: load feature memory: %w", err)
	}
	fm := NewFeatureMemory()
	for m, e := range raw.Entries {
		if e == nil || e.Tree == nil {
			return nil, fmt.Errorf("core: serialised entry for %s has no tree", m)
		}
		if err := e.compile(); err != nil {
			return nil, fmt.Errorf("core: compile loaded entry for %s: %w", m, err)
		}
		fm.entries[m] = e
	}
	return fm, nil
}
