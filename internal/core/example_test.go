package core_test

import (
	"context"
	"fmt"
	"time"

	"iotsid/internal/core"
	"iotsid/internal/dataset"
	"iotsid/internal/home"
	"iotsid/internal/instr"
	"iotsid/internal/sensor"
)

// Example_authorize wires the full framework and judges a sensitive
// instruction against a staged burglary context.
func Example_authorize() {
	detector, err := core.DefaultDetector()
	if err != nil {
		fmt.Println("detector:", err)
		return
	}
	corpus, err := dataset.Corpus(dataset.CorpusConfig{Seed: 1})
	if err != nil {
		fmt.Println("corpus:", err)
		return
	}
	memory, err := core.Train(corpus, dataset.BuildConfig{Seed: 42}, core.TrainConfig{Seed: 9})
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	h, err := home.NewStandard(home.EnvConfig{Seed: 11})
	if err != nil {
		fmt.Println("home:", err)
		return
	}
	ids, err := core.New(core.Config{
		Detector:  detector,
		Collector: &core.SimCollector{Env: h.Env()},
		Memory:    memory,
	})
	if err != nil {
		fmt.Println("framework:", err)
		return
	}

	// Stage the attack context: nobody home, night, no hazard.
	attack, err := dataset.AttackSceneSeeded(dataset.ModelWindow, 99)
	if err != nil {
		fmt.Println("scene:", err)
		return
	}
	h.Env().Apply(attack)

	open, err := instr.BuiltinRegistry().Build("window.open", "window-1", instr.OriginUser, nil)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	decision, err := ids.Authorize(context.Background(), open)
	if err != nil {
		fmt.Println("authorize:", err)
		return
	}
	fmt.Println("allowed:", decision.Allowed)
	fmt.Println("sensitive:", decision.Sensitive)
	// Output:
	// allowed: false
	// sensitive: true
}

// ExampleCameraWarner shows the Fig 7 linkage raising a warning on a door
// opening.
func ExampleCameraWarner() {
	w := core.NewCameraWarner()
	base := sensor.NewSnapshot(sceneClock(0))
	base.Set(sensor.FeatDoorOpen, sensor.Bool(false))
	base.Set(sensor.FeatOccupancy, sensor.Bool(false))
	w.Observe(base) // prime

	opened := sensor.NewSnapshot(sceneClock(1))
	opened.Set(sensor.FeatDoorOpen, sensor.Bool(true))
	opened.Set(sensor.FeatOccupancy, sensor.Bool(false))
	for _, warning := range w.Observe(opened) {
		fmt.Println(warning)
	}
	// Output:
	// [door_window_opened] door opened
}

func sceneClock(minute int) time.Time {
	return time.Date(2021, 4, 1, 3, minute, 0, 0, time.UTC)
}
