package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"iotsid/internal/dataset"
	"iotsid/internal/epoch"
	"iotsid/internal/obs"
	"iotsid/internal/sensor"
)

// epochClock is a manually advanced clock shared by a store and its
// collector, so push ages are exact.
type epochClock struct {
	mu  sync.Mutex
	now time.Time
}

func newEpochClock() *epochClock {
	return &epochClock{now: time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *epochClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *epochClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// epochFixture builds a store + collector pair on a shared test clock with
// one required source.
func epochFixture(t *testing.T, freshFor, staleness time.Duration) (*epoch.Store, *EpochCollector, *epochClock) {
	t.Helper()
	clk := newEpochClock()
	st, err := epoch.NewStore(epoch.Config{Now: clk.Now},
		epoch.SourceConfig{Name: "sim", Required: true, FreshFor: freshFor, Staleness: staleness})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewEpochCollector(EpochCollectorConfig{Now: clk.Now}, st)
	if err != nil {
		t.Fatal(err)
	}
	return st, c, clk
}

func pushScene(t *testing.T, st *epoch.Store, source string, snap sensor.Snapshot, at time.Time) {
	t.Helper()
	d := snap.Clone()
	d.At = at
	if err := st.Push(source, d); err != nil {
		t.Fatal(err)
	}
}

func TestNewEpochCollectorValidation(t *testing.T) {
	if _, err := NewEpochCollector(EpochCollectorConfig{}, nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestEpochCollectorSteadyState(t *testing.T) {
	st, c, clk := epochFixture(t, time.Minute, 0)
	legal := legalCtx(t, dataset.ModelWindow)
	pushScene(t, st, "sim", legal, clk.Now())
	snap, prov, err := c.CollectDetailed(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prov.Degraded() {
		t.Fatalf("fresh push reported degraded: %+v", prov)
	}
	if len(snap.Values) != len(legal.Values) {
		t.Fatalf("snapshot values = %d, want %d", len(snap.Values), len(legal.Values))
	}
	// Strict Collect also serves.
	if _, err := c.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 1 {
		t.Fatalf("collector epoch = %d, want 1", c.Epoch())
	}
}

func TestEpochCollectorNeverPushed(t *testing.T) {
	_, c, _ := epochFixture(t, time.Minute, 0)
	if _, _, err := c.CollectDetailed(context.Background()); err == nil {
		t.Fatal("empty store served a context")
	}
	if _, err := c.Collect(context.Background()); err == nil {
		t.Fatal("strict collect served an empty store")
	}
}

func TestEpochCollectorContextCanceled(t *testing.T) {
	st, c, clk := epochFixture(t, time.Minute, 0)
	pushScene(t, st, "sim", legalCtx(t, dataset.ModelWindow), clk.Now())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.CollectDetailed(ctx); err == nil {
		t.Fatal("canceled context served")
	}
}

// TestEpochCollectorStalenessExpiry drives the full provenance ladder as
// pushes stop: fresh within FreshFor, stale within the Staleness budget,
// missing beyond it — and checks the strict path rejects once missing.
func TestEpochCollectorStalenessExpiry(t *testing.T) {
	st, c, clk := epochFixture(t, time.Minute, 5*time.Minute)
	pushScene(t, st, "sim", legalCtx(t, dataset.ModelWindow), clk.Now())
	ctx := context.Background()

	states := func() SourceState {
		t.Helper()
		_, prov, err := c.CollectDetailed(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return prov[0].State
	}

	if got := states(); got != SourceFresh {
		t.Fatalf("at push time: %s, want fresh", got)
	}
	clk.Advance(59 * time.Second)
	if got := states(); got != SourceFresh {
		t.Fatalf("within FreshFor: %s, want fresh", got)
	}
	clk.Advance(2 * time.Second) // 1m01s: past FreshFor, within Staleness
	if got := states(); got != SourceStale {
		t.Fatalf("past FreshFor: %s, want stale", got)
	}
	// Stale still serves values and the strict path still accepts (within
	// budget mirrors MultiCollector's bounded-stale fallback).
	if _, err := c.Collect(ctx); err != nil {
		t.Fatalf("stale-within-budget strict collect: %v", err)
	}
	clk.Advance(5 * time.Minute) // 6m01s: past Staleness
	_, prov, err := c.CollectDetailed(ctx)
	if err == nil {
		t.Fatal("single-source store with expired push still served")
	}
	if prov[0].State != SourceMissing {
		t.Fatalf("past Staleness: %s, want missing", prov[0].State)
	}
	if !strings.Contains(prov[0].Err, "staleness budget") {
		t.Fatalf("missing Err = %q", prov[0].Err)
	}
	if _, err := c.Collect(ctx); err == nil {
		t.Fatal("strict collect served an expired required source")
	}
	// A new push revives the source.
	clk.Advance(time.Second)
	pushScene(t, st, "sim", legalCtx(t, dataset.ModelWindow), clk.Now())
	if got := states(); got != SourceFresh {
		t.Fatalf("after revival push: %s, want fresh", got)
	}
}

// TestEpochCollectorZeroStalenessSkipsStaleBand: with Staleness zero the
// source goes straight from fresh to missing.
func TestEpochCollectorZeroStalenessSkipsStaleBand(t *testing.T) {
	st, c, clk := epochFixture(t, time.Minute, 0)
	pushScene(t, st, "sim", legalCtx(t, dataset.ModelWindow), clk.Now())
	clk.Advance(time.Minute + time.Second)
	_, prov, err := c.CollectDetailed(context.Background())
	if err == nil {
		t.Fatal("expired single source served")
	}
	if prov[0].State != SourceMissing {
		t.Fatalf("state = %s, want missing (no stale band)", prov[0].State)
	}
}

// TestEpochCollectorMixedSources: an optional source expiring degrades the
// context without blocking service; a required one blocks the strict path.
func TestEpochCollectorMixedSources(t *testing.T) {
	clk := newEpochClock()
	st, err := epoch.NewStore(epoch.Config{Now: clk.Now},
		epoch.SourceConfig{Name: "sim", Required: true, FreshFor: time.Hour},
		epoch.SourceConfig{Name: "aux", Required: false, FreshFor: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewEpochCollector(EpochCollectorConfig{Now: clk.Now}, st)
	if err != nil {
		t.Fatal(err)
	}
	pushScene(t, st, "sim", legalCtx(t, dataset.ModelWindow), clk.Now())
	pushScene(t, st, "aux", legalCtx(t, dataset.ModelWindow), clk.Now())
	clk.Advance(2 * time.Minute) // aux expires, sim stays fresh
	snap, prov, err := c.CollectDetailed(context.Background())
	if err != nil {
		t.Fatalf("optional expiry blocked service: %v", err)
	}
	if !prov.Degraded() {
		t.Fatal("expired optional source not reported")
	}
	if len(prov.MissingRequired()) != 0 {
		t.Fatalf("optional source counted as required: %v", prov.MissingRequired())
	}
	if len(snap.Values) == 0 {
		t.Fatal("degraded view lost its values")
	}
	if _, err := c.Collect(context.Background()); err != nil {
		t.Fatalf("strict collect with only optional missing: %v", err)
	}
}

// TestAuthorizeEpochFailsClosed: the framework over an EpochCollector
// rejects sensitive instructions once the required source's pushes expire,
// and still judges non-sensitive ones against the lingering context. A
// second optional source stays live so the view remains serviceable — a
// store with no live source at all errors out of Authorize instead, same
// as MultiCollector's every-source-failed path.
func TestAuthorizeEpochFailsClosed(t *testing.T) {
	clk := newEpochClock()
	st, err := epoch.NewStore(epoch.Config{Now: clk.Now},
		epoch.SourceConfig{Name: "sim", Required: true, FreshFor: time.Minute, Staleness: 5 * time.Minute},
		epoch.SourceConfig{Name: "aux", Required: false, FreshFor: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewEpochCollector(EpochCollectorConfig{Now: clk.Now}, st)
	if err != nil {
		t.Fatal(err)
	}
	pushScene(t, st, "sim", legalCtx(t, dataset.ModelWindow), clk.Now())
	pushScene(t, st, "aux", sensor.Snapshot{}, clk.Now())
	f, err := New(Config{
		Detector:  detectorForTest(t),
		Collector: c,
		Memory:    memoryForTest(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	winOpen := buildInstr(t, "window.open", "window-1")
	dec, err := f.Authorize(ctx, winOpen)
	if err != nil || !dec.Allowed {
		t.Fatalf("fresh push: dec=%+v err=%v", dec, err)
	}
	clk.Advance(10 * time.Minute) // required source expires
	dec, err = f.Authorize(ctx, winOpen)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Allowed {
		t.Fatal("sensitive instruction allowed with required source expired")
	}
	if !strings.Contains(dec.Reason, "fail closed") {
		t.Fatalf("reason = %q, want fail-closed", dec.Reason)
	}
	// Non-sensitive instructions still judge against the partial context.
	tvOn := buildInstr(t, "tv.on", "tv-1")
	if f.Detector().IsSensitive(tvOn) {
		t.Fatal("fixture assumption broken: tv.on should be non-sensitive")
	}
	dec, err = f.Authorize(ctx, tvOn)
	if err != nil {
		t.Fatalf("non-sensitive under degraded context: %v", err)
	}
	if !dec.Allowed {
		t.Fatalf("non-sensitive rejected under degraded context: %+v", dec)
	}
}

// TestAuthorizeEpochSteadyStateAllocs is the tentpole's acceptance gate:
// full instrumented Authorize over the epoch read path allocates nothing
// in steady state.
func TestAuthorizeEpochSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	reg := obs.NewRegistry()
	clk := newEpochClock()
	st, err := epoch.NewStore(epoch.Config{Now: clk.Now, Metrics: reg},
		epoch.SourceConfig{Name: "sim", Required: true, FreshFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewEpochCollector(EpochCollectorConfig{Now: clk.Now}, st)
	if err != nil {
		t.Fatal(err)
	}
	pushScene(t, st, "sim", legalCtx(t, dataset.ModelWindow), clk.Now())
	f, err := New(Config{
		Detector:  detectorForTest(t),
		Collector: c,
		Memory:    memoryForTest(t),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstr(t, "window.open", "window-1")
	ctx := context.Background()
	// Warm: buffer pool, reason interning table.
	for i := 0; i < 3; i++ {
		if _, err := f.Authorize(ctx, in); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		dec, err := f.Authorize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Allowed {
			t.Fatal("expected allow on a legal scene")
		}
	})
	if allocs != 0 {
		t.Errorf("epoch Authorize steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEpochMatchesPolledDecisions: the same scene served through the epoch
// store and through a plain polled collector must produce bit-identical
// decisions.
func TestEpochMatchesPolledDecisions(t *testing.T) {
	ops := []struct{ op, dev string }{
		{"window.open", "window-1"},
		{"window.close", "window-1"},
		{"tv.on", "tv-1"},
	}
	for _, scene := range []sensor.Snapshot{
		legalCtx(t, dataset.ModelWindow),
		attackCtx(t, dataset.ModelWindow),
	} {
		st, c, clk := epochFixture(t, time.Hour, 0)
		pushScene(t, st, "sim", scene, clk.Now())
		fEpoch, err := New(Config{Detector: detectorForTest(t), Collector: c, Memory: memoryForTest(t)})
		if err != nil {
			t.Fatal(err)
		}
		fPolled, err := New(Config{
			Detector:  detectorForTest(t),
			Collector: CollectorFunc(func(ctx context.Context) (sensor.Snapshot, error) { return scene, nil }),
			Memory:    memoryForTest(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range ops {
			in := buildInstr(t, o.op, o.dev)
			de, err := fEpoch.Authorize(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			dp, err := fPolled.Authorize(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			if de != dp {
				t.Fatalf("%s decisions diverge: epoch=%+v polled=%+v", o.op, de, dp)
			}
		}
	}
}
